// Package core wires Jigsaw's stages into the pipeline the paper
// describes: bootstrap synchronization over the first window of every
// per-radio trace (§4.1), streaming frame unification with continuous
// resynchronization (§4.2), link-layer reconstruction into transmission
// attempts and frame exchanges (§5.1), and transport-layer flow analysis
// with the TCP delivery oracle (§5.2).
//
// The pipeline operates in a single pass over the trace data (after the
// bootstrap pre-scan), the property that lets the real system run online,
// faster than real time. With Config.Workers > 1 the pass is spread across
// the machine:
//
//   - the bootstrap pre-scan decodes each radio's first window concurrently
//     (every radio's window is independent);
//   - per-radio trace decompression is prefetched by background readers;
//   - unification (inherently serial: one priority queue over all radios)
//     runs on Run's caller goroutine as the router, streaming jframes over
//     channels to
//   - link-layer reconstruction, sharded by conversation key (the
//     transmitter MAC that owns all reconstructor state a frame can touch)
//     across Workers reconstructors, whose exchanges are
//   - merged back into one canonical close-order stream by a
//     watermark-driven heap, feeding
//   - transport analysis, sharded by TCP flow 4-tuple so both directions of
//     a connection land in one analyzer.
//
// Sharding is result-invariant: each reconstructor sees exactly the frame
// subsequence that can touch its state, exchanges carry deterministic close
// stamps (llc.Exchange.CloseUS), and the merged stream is released in
// canonical (CloseUS, ...) order — so a parallel run's Result is identical
// to the serial (Workers == 1) reference path, which the tests assert.
package core

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dot80211"
	"repro/internal/llc"
	"repro/internal/timesync"
	"repro/internal/tracefile"
	"repro/internal/transport"
	"repro/internal/unify"
)

// Config tunes the pipeline.
type Config struct {
	// Unify holds the unifier's operating point (search window, resync
	// threshold, skew compensation).
	Unify unify.Config
	// BootstrapWindowUS is how much of each trace the bootstrap examines
	// (paper: the first second).
	BootstrapWindowUS int64
	// KeepExchanges retains all frame exchanges in the result (memory
	// permitting); analyses that stream should use the Sink instead.
	KeepExchanges bool
	// KeepJFrames retains all jframes (for visualization and small runs).
	KeepJFrames bool
	// Workers sets the pipeline's parallelism: 0 uses GOMAXPROCS, 1 runs
	// the single-goroutine serial reference path, and larger values shard
	// reconstruction and transport analysis across that many workers.
	// Results are identical at every setting.
	Workers int
	// Passes are streaming analysis observers fed inline as the pipeline
	// emits jframes and exchanges — the bounded-memory replacement for
	// KeepJFrames/KeepExchanges plus post-hoc slice analysis. The
	// internal/analysis passes satisfy this interface; results are
	// identical at every Workers setting.
	Passes []Pass
	// SnapshotEveryUS, when > 0, re-delivers the run's aggregate result
	// (unify/llc/transport stats) to every ResultSink pass each time the
	// reconstruction watermark advances this far — the live-monitoring
	// hook: result-derived report fields stay current while the run is
	// still in flight instead of materializing only at the end. Serial
	// path only (the single goroutine makes mid-run stats reads safe);
	// RunFrom rejects it with Workers > 1. The final SetResult before
	// RunFrom returns still happens either way.
	SnapshotEveryUS int64
}

// Pass is a streaming analysis observer the pipeline feeds inline, the
// structural contract internal/analysis's Pass type implements (defined
// here so core does not import the analysis layer it feeds).
//
// Delivery contract, identical on the serial and sharded-parallel paths:
//
//   - ObserveJFrame is called with every unified jframe in emission order
//     (the unifier's near-time-ordered stream), serialized: never two
//     concurrent calls, though successive calls may come from different
//     goroutines.
//   - ObserveExchange is called with every reconstructed exchange in
//     canonical close order (the order the transport analyzer consumes),
//     serialized the same way. ObserveJFrame and ObserveExchange are also
//     mutually serialized: a pass never sees two concurrent callbacks.
//   - When ObserveExchange(ex) fires, every jframe the unifier emitted
//     before the reconstruction watermark passed ex.CloseUS has already
//     been observed. The unifier's emission order can locally invert by up
//     to roughly its search window, so a pass that needs *every* jframe
//     with UnivUS <= ex.CloseUS must additionally defer the exchange until
//     its jframe frontier has advanced past CloseUS plus that slack (see
//     internal/analysis's exchange deferral).
//   - Callbacks stop before RunFrom returns; the caller finalizes passes
//     afterwards.
type Pass interface {
	ObserveJFrame(*unify.JFrame)
	ObserveExchange(*llc.Exchange)
}

// ShardedPass is an exchange-keyed Pass whose state partitions by TCP flow
// (transport.FlowShard), the same absorb/merge pattern the transport
// analyzer itself uses. On the parallel path the pipeline creates one
// shard per transport worker with NewShard, feeds each shard its flow
// shard's exchange subsequence concurrently (ObserveJFrame still goes to
// the root pass), and calls AbsorbShard on the root once per shard, in
// shard order, after the merge completes. AbsorbShard must therefore be
// insensitive to how exchanges were partitioned, which holds whenever the
// pass's exchange-side state is a per-key accumulation. The serial path
// never shards: the root pass sees every exchange directly.
type ShardedPass interface {
	Pass
	// NewShard returns a fresh exchange-side accumulator.
	NewShard() Pass
	// AbsorbShard merges a shard's state back into the receiver.
	AbsorbShard(Pass)
}

// ResultSink is implemented by passes that need the run's aggregate result
// (unify/llc/transport stats) to finalize; the pipeline calls SetResult
// once, after the pass has observed both full streams, before RunFrom
// returns.
type ResultSink interface {
	SetResult(*Result)
}

// DefaultConfig returns the paper's defaults (Workers auto-sizes to the
// machine).
func DefaultConfig() Config {
	return Config{
		Unify:             unify.DefaultConfig(),
		BootstrapWindowUS: timesync.DefaultWindowUS,
	}
}

// Sink receives pipeline products as they stream. Any callback may be nil.
// With Workers > 1, OnJFrame fires from the goroutine driving unification
// (Run's caller) and OnExchange from the merge goroutine: each callback is
// invoked serially and in stream order, but the two may run concurrently
// with each other.
type Sink struct {
	OnJFrame   func(*unify.JFrame)
	OnExchange func(*llc.Exchange)
}

// DispersionHistogram buckets jframe group dispersion in 1 µs bins up to
// its length; the tail bucket absorbs the rest. Only multi-instance jframes
// count (a singleton has no dispersion), matching Figure 4.
type DispersionHistogram struct {
	Bins  []int64 // Bins[i] counts dispersion == i µs
	Tail  int64
	Total int64
}

// Add records one dispersion value.
func (h *DispersionHistogram) Add(us int64) {
	h.Total++
	if int(us) < len(h.Bins) {
		h.Bins[us]++
	} else {
		h.Tail++
	}
}

// Percentile returns the smallest dispersion d such that at least p
// (0..1) of jframes have dispersion ≤ d; -1 if the answer lies in the tail.
func (h *DispersionHistogram) Percentile(p float64) int64 {
	if h.Total == 0 {
		return 0
	}
	need := int64(p * float64(h.Total))
	var cum int64
	for i, c := range h.Bins {
		cum += c
		if cum >= need {
			return int64(i)
		}
	}
	return -1
}

// Result summarizes one pipeline run.
type Result struct {
	Bootstrap  *timesync.Result
	UnifyStats unify.Stats
	LLCStats   llc.Stats
	Transport  *transport.Analyzer
	Dispersion DispersionHistogram

	// Retained products (per Config). Exchanges are in canonical close
	// order (llc.Exchange.CloseUS with deterministic tiebreaks), the same
	// order the transport analyzer consumed them in.
	JFrames   []*unify.JFrame
	Exchanges []*llc.Exchange
}

// Run executes the full pipeline over per-radio compressed traces (the
// bytes produced by tracefile.Writer). clockGroups lists radios sharing a
// physical clock for cross-channel bridging.
//
// Run is the in-memory compatibility wrapper around RunFrom: the whole
// compressed trace set stays resident for the run. Callers operating at
// building scale should hand RunFrom a directory-backed TraceSet instead.
func Run(traces map[int32][]byte, clockGroups [][]int32, cfg Config, sink *Sink) (*Result, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: no traces")
	}
	return RunFrom(tracefile.NewBufferSet(traces), clockGroups, cfg, sink)
}

// RunFrom executes the full pipeline over a TraceSet, streaming each
// radio's trace through the pass (two sequential opens per radio: the
// bootstrap pre-scan, then the merge). Memory stays O(search window) per
// radio regardless of trace length when the set is directory-backed; the
// buffer-backed case additionally holds the compressed bytes the caller
// already owns. clockGroups lists radios sharing a physical clock for
// cross-channel bridging.
func RunFrom(ts *tracefile.TraceSet, clockGroups [][]int32, cfg Config, sink *Sink) (*Result, error) {
	if ts == nil || ts.Len() == 0 {
		return nil, fmt.Errorf("core: no traces")
	}
	if cfg.BootstrapWindowUS == 0 {
		cfg.BootstrapWindowUS = timesync.DefaultWindowUS
	}
	if cfg.Unify.SearchWindowUS == 0 {
		cfg.Unify = unify.DefaultConfig()
	}
	if sink == nil {
		sink = &Sink{}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SnapshotEveryUS > 0 && workers > 1 {
		return nil, fmt.Errorf("core: SnapshotEveryUS requires the serial path (Workers=1), have %d workers", workers)
	}

	// Phase 1: bootstrap over each trace's first window, pre-scanning the
	// independent per-radio windows concurrently. Each radio's stream is
	// opened for the scan and closed again before the main pass.
	readers := make(map[int32]*tracefile.Reader, ts.Len())
	closers := make([]io.Closer, 0, ts.Len())
	closeAll := func() error {
		var first error
		for _, c := range closers {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
		closers = closers[:0]
		return first
	}
	for _, r := range ts.Radios() {
		rc, err := ts.Open(r)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("core: open trace for radio %d: %w", r, err)
		}
		closers = append(closers, rc)
		readers[r] = tracefile.NewReader(rc)
	}
	window, err := timesync.CollectWindowParallel(readers, cfg.BootstrapWindowUS, workers)
	if cerr := closeAll(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap window: %w", err)
	}
	boot, err := timesync.Bootstrap(window, clockGroups)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap: %w", err)
	}

	res := &Result{
		Bootstrap: boot,
		Dispersion: DispersionHistogram{
			Bins: make([]int64, 1000),
		},
	}

	// Phase 2: single pass — unify, reconstruct, analyze.
	ps := newPassSet(cfg.Passes)
	if workers <= 1 {
		err = runSerial(ts, boot, cfg, sink, ps, res)
	} else {
		err = runParallel(ts, boot, cfg, sink, ps, res, workers)
	}
	if err != nil {
		return nil, err
	}
	ps.finish(res)
	return res, nil
}

// passSet dispatches pipeline products to the configured passes. On the
// serial path every callback comes from one goroutine and the mutex is
// unused; on the parallel path jframes arrive from the router goroutine
// and exchanges from the merge goroutine, so dispatch locks to honor the
// Pass serialization contract. Sharded passes' exchange sides are fed from
// the transport shard workers instead (one shard instance per worker, no
// lock: each instance is owned by one goroutine).
type passSet struct {
	mu        sync.Mutex
	locked    bool
	all       []Pass // every configured pass (jframe dispatch)
	serial    []Pass // passes whose exchanges flow through the canonical stream
	shardable []ShardedPass
	shards    [][]Pass // shards[w][k]: worker w's instance of shardable[k]
}

func newPassSet(passes []Pass) *passSet {
	ps := &passSet{all: passes}
	ps.serial = passes
	return ps
}

// shard prepares per-worker exchange shards for passes that support it and
// removes them from the serial exchange dispatch. Called once, before the
// parallel path starts, with locked dispatch enabled.
func (ps *passSet) shard(workers int) {
	ps.locked = true
	ps.serial = nil
	for _, p := range ps.all {
		if sp, ok := p.(ShardedPass); ok {
			ps.shardable = append(ps.shardable, sp)
		} else {
			ps.serial = append(ps.serial, p)
		}
	}
	if len(ps.shardable) == 0 {
		return
	}
	ps.shards = make([][]Pass, workers)
	for w := range ps.shards {
		insts := make([]Pass, len(ps.shardable))
		for k, sp := range ps.shardable {
			insts[k] = sp.NewShard()
		}
		ps.shards[w] = insts
	}
}

// absorb merges every worker's shard instances back into their root
// passes, in worker order. Called after the transport workers finish.
func (ps *passSet) absorb() {
	for k, sp := range ps.shardable {
		for w := range ps.shards {
			sp.AbsorbShard(ps.shards[w][k])
		}
	}
}

func (ps *passSet) observeJFrame(j *unify.JFrame) {
	if len(ps.all) == 0 {
		return
	}
	if ps.locked {
		ps.mu.Lock()
		defer ps.mu.Unlock()
	}
	for _, p := range ps.all {
		p.ObserveJFrame(j)
	}
}

func (ps *passSet) observeExchange(ex *llc.Exchange) {
	if len(ps.serial) == 0 {
		return
	}
	if ps.locked {
		ps.mu.Lock()
		defer ps.mu.Unlock()
	}
	for _, p := range ps.serial {
		p.ObserveExchange(ex)
	}
}

// observeShardExchange feeds worker w's shard instances one exchange of
// its flow shard's subsequence.
func (ps *passSet) observeShardExchange(w int, ex *llc.Exchange) {
	if ps.shards == nil {
		return
	}
	for _, p := range ps.shards[w] {
		p.ObserveExchange(ex)
	}
}

// finish hands the completed result to every pass that wants it.
func (ps *passSet) finish(res *Result) {
	for _, p := range ps.all {
		if rs, ok := p.(ResultSink); ok {
			rs.SetResult(res)
		}
	}
}

// observeJFrame applies the per-jframe bookkeeping every driver shares.
// Sinks and passes borrow the frame for the duration of the call; keeping
// it in the result takes its own reference.
func observeJFrame(res *Result, cfg Config, sink *Sink, ps *passSet, j *unify.JFrame) {
	if len(j.Instances) >= 2 {
		res.Dispersion.Add(j.DispersionUS)
	}
	if sink.OnJFrame != nil {
		sink.OnJFrame(j)
	}
	ps.observeJFrame(j)
	if cfg.KeepJFrames {
		j.Retain()
		res.JFrames = append(res.JFrames, j)
	}
}

// deliverExchange applies the per-exchange bookkeeping every driver shares.
// Both drivers call it in canonical close order. Sinks and passes borrow
// the exchange; keeping it in the result takes its own reference on the
// exchange's jframes.
func deliverExchange(res *Result, cfg Config, sink *Sink, ps *passSet, ex *llc.Exchange) {
	if sink.OnExchange != nil {
		sink.OnExchange(ex)
	}
	ps.observeExchange(ex)
	if cfg.KeepExchanges {
		ex.Retain()
		res.Exchanges = append(res.Exchanges, ex)
	}
}

// exchangeLess is the canonical exchange order: close stamp first, then
// deterministic tiebreaks. Both the serial sort and the parallel merge heap
// use it, so the two paths feed the transport analyzer one identical stream.
func exchangeLess(a, b *llc.Exchange) bool {
	if a.CloseUS != b.CloseUS {
		return a.CloseUS < b.CloseUS
	}
	if a.StartUS != b.StartUS {
		return a.StartUS < b.StartUS
	}
	if a.EndUS != b.EndUS {
		return a.EndUS < b.EndUS
	}
	if c := bytes.Compare(a.Transmitter[:], b.Transmitter[:]); c != 0 {
		return c < 0
	}
	if c := bytes.Compare(a.Receiver[:], b.Receiver[:]); c != 0 {
		return c < 0
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Delivery != b.Delivery {
		return a.Delivery < b.Delivery
	}
	return len(a.Attempts) < len(b.Attempts)
}

// jframeStream is a source of unified jframes in emission order — the
// unifier on the flat path, the global k-way merger on the hierarchical
// path. Next returns io.EOF at clean end of stream.
type jframeStream interface {
	Next() (*unify.JFrame, error)
}

// runSerial is the single-goroutine reference path over a live unifier.
func runSerial(ts *tracefile.TraceSet, boot *timesync.Result, cfg Config, sink *Sink, ps *passSet, res *Result) error {
	sources := make(map[int32]unify.Source, ts.Len())
	for _, r := range ts.Radios() {
		sources[r] = &readerSource{ts: ts, radio: r}
	}
	u := unify.New(cfg.Unify, sources, boot)
	if err := driveSerial(u, func() unify.Stats { return u.Stats }, cfg, sink, ps, res); err != nil {
		return err
	}
	return sourceFaults(sources)
}

// driveSerial runs the back half of the serial pipeline over any jframe
// stream: one reconstructor over the whole stream, its exchanges released
// to one transport analyzer in canonical close order as the reconstructor's
// watermark advances — the same streaming release rule the parallel merger
// uses, so the pass stays online with bounded buffering. stats reads the
// stream's unification counters (live mid-run on the flat path, a
// precomputed aggregate on the hierarchical path).
func driveSerial(src jframeStream, stats func() unify.Stats, cfg Config, sink *Sink, ps *passSet, res *Result) error {
	rec := llc.NewReconstructor()
	ta := transport.NewAnalyzer()
	h := &exchangeHeap{}
	var lastSnapUS int64
	release := func(limit int64) {
		for h.Len() > 0 && (*h)[0].ex.CloseUS < limit {
			ex := heap.Pop(h).(routedExchange).ex
			deliverExchange(res, cfg, sink, ps, ex)
			ta.AddExchange(ex)
			// The transport analyzer copies what it keeps; the stream's
			// ownership of the exchange's jframes ends here.
			ex.Release()
		}
	}
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("core: jframe stream: %w", err)
		}
		observeJFrame(res, cfg, sink, ps, j)
		rec.Process(j)
		// Passes observed it, the reconstructor retained what it stores —
		// the driver's reference from Next ends here.
		j.Release()
		for _, ex := range rec.Take() {
			heap.Push(h, routedExchange{ex: ex})
		}
		wm := rec.Watermark()
		release(wm)
		if cfg.SnapshotEveryUS > 0 && wm >= lastSnapUS+cfg.SnapshotEveryUS {
			lastSnapUS = wm
			res.Transport = ta
			res.UnifyStats = stats()
			res.LLCStats = rec.Stats
			ps.finish(res)
		}
	}
	for _, ex := range rec.Flush() {
		heap.Push(h, routedExchange{ex: ex})
	}
	release(math.MaxInt64)
	res.Transport = ta
	res.UnifyStats = stats()
	res.LLCStats = rec.Stats
	return nil
}

// Parallel-path tuning. tickEvery bounds how stale an idle shard's clock
// (and hence the release watermark) can get; the batch sizes amortize
// channel synchronization without adding meaningful latency. The prefetch
// constants also bound the parallel path's memory: every radio can hold
// prefetchChanBuf+2 batches of prefetchBatch records in flight, so at
// building scale (~120 radios, ~300 B/record) the decompression pipeline
// owns ~10 MB — keep the product small, it is the dominant term in the
// streaming pipeline's working set.
const (
	tickEvery       = 64
	stageChanBuf    = 128
	exchangeBatch   = 128
	flushEvery      = 32
	prefetchBatch   = 128
	prefetchChanBuf = 2

	// Batched stage dispatch: router→llc and merge→transport hops carry
	// owned slabs instead of single messages, amortizing channel
	// synchronization across up to llcBatch frames (exchangeSlab
	// exchanges). Slab channel buffers are sized so the frames in flight
	// per shard stay near the old stageChanBuf.
	llcBatch     = 64
	llcChanBuf   = 4
	exchangeSlab = 64
	tChanBuf     = 4
)

// llcBatchSize is the router's slab flush threshold — a variable, not the
// llcBatch constant, so determinism tests can force degenerate batch sizes
// and assert output is invariant (the merge contract guarantees it).
var llcBatchSize = llcBatch

// llcMsg carries either a jframe or a clock tick to a reconstruction shard.
type llcMsg struct {
	j      *unify.JFrame
	tickUS int64
}

// Slab pools for the batched hops. Slabs follow a strict get/flush/put
// contract: the sender gets a slab, appends messages it owns (one jframe
// reference per frame rides inside), sends the whole slab, and the receiver
// puts it back after draining — Retain/Release stays per frame at the
// existing ownership boundaries; the slab itself recycles through the pool.
// slabBalance counts outstanding slabs (gets minus puts) so tests can
// assert every slab returns to its pool.
var (
	slabBalance  atomic.Int64
	llcSlabPool  = sync.Pool{New: func() any { s := make([]llcMsg, 0, llcBatch+1); return &s }}
	exchSlabPool = sync.Pool{New: func() any { s := make([]*llc.Exchange, 0, exchangeSlab); return &s }}
)

func getLLCSlab() *[]llcMsg {
	slabBalance.Add(1)
	return llcSlabPool.Get().(*[]llcMsg)
}

func putLLCSlab(s *[]llcMsg) {
	clear(*s) // drop stale jframe pointers before pooling
	*s = (*s)[:0]
	slabBalance.Add(-1)
	llcSlabPool.Put(s)
}

func getExchSlab() *[]*llc.Exchange {
	slabBalance.Add(1)
	return exchSlabPool.Get().(*[]*llc.Exchange)
}

func putExchSlab(s *[]*llc.Exchange) {
	clear(*s)
	*s = (*s)[:0]
	slabBalance.Add(-1)
	exchSlabPool.Put(s)
}

// routedExchange pairs an exchange with its transport shard, computed in
// the llc workers so the single merge goroutine stays decode-free.
type routedExchange struct {
	ex    *llc.Exchange
	shard int
}

// mergeMsg carries a shard's newly closed exchanges and its watermark (a
// lower bound on every CloseUS it can still emit) to the merger. stats is
// non-nil on the shard's final message.
type mergeMsg struct {
	worker    int
	exchanges []routedExchange
	watermark int64
	stats     *llc.Stats
}

// runParallel is the sharded pipeline over a live unifier: per-radio
// prefetchers decompress each trace in the background; only synchronized
// radios get one (the unifier skips the rest, and an unconsumed prefetcher
// would leak its goroutine).
func runParallel(ts *tracefile.TraceSet, boot *timesync.Result, cfg Config, sink *Sink, ps *passSet, res *Result, workers int) error {
	sources := make(map[int32]unify.Source, ts.Len())
	for _, r := range ts.Radios() {
		if _, ok := boot.OffsetUS[r]; ok {
			sources[r] = newPrefetchSource(ts, r)
		}
	}
	if cfg.Unify.CoalesceWorkers == 0 {
		// The sharded coalescer emits identical output at every worker
		// count, so the parallel path defaults it to the pipeline width.
		cfg.Unify.CoalesceWorkers = workers
	}
	u := unify.New(cfg.Unify, sources, boot)
	if err := driveParallel(u, func() unify.Stats { return u.Stats }, cfg, sink, ps, res, workers); err != nil {
		return err
	}
	return sourceFaults(sources)
}

// driveParallel runs the sharded back half of the pipeline over any jframe
// stream: the stream's emissions route to conversation-keyed reconstruction
// shards, a watermark-driven heap merges their exchanges back into
// canonical close order, and flow-keyed transport shards consume the merged
// stream — all stages overlapping.
func driveParallel(src jframeStream, stats func() unify.Stats, cfg Config, sink *Sink, ps *passSet, res *Result, workers int) error {
	ps.shard(workers)

	llcIn := make([]chan *[]llcMsg, workers)
	for i := range llcIn {
		llcIn[i] = make(chan *[]llcMsg, llcChanBuf)
	}
	merged := make(chan mergeMsg, workers*2)
	var llcWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		llcWG.Add(1)
		go func(id int) {
			defer llcWG.Done()
			llcShardWorker(id, workers, llcIn[id], merged)
		}(w)
	}
	go func() {
		llcWG.Wait()
		close(merged)
	}()

	tIn := make([]chan *[]*llc.Exchange, workers)
	for i := range tIn {
		tIn[i] = make(chan *[]*llc.Exchange, tChanBuf)
	}
	analyzers := make([]*transport.Analyzer, workers)
	var tWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		tWG.Add(1)
		go func(id int) {
			defer tWG.Done()
			ta := transport.NewAnalyzer()
			for sp := range tIn[id] {
				for _, ex := range *sp {
					ta.AddExchange(ex)
					ps.observeShardExchange(id, ex)
					// Last consumer on the parallel path: the analyzer
					// copies what it keeps and shard passes only borrow.
					ex.Release()
				}
				putExchSlab(sp)
			}
			analyzers[id] = ta
		}(w)
	}

	mergeDone := make(chan struct{})
	go func() {
		defer close(mergeDone)
		mergeExchanges(merged, tIn, res, cfg, sink, ps, workers)
	}()

	// Router (this goroutine): drive the stream, observe every jframe,
	// append valid ones to their conversation shard's slab, and tick all
	// shards periodically so quiet ones expire state and advance their
	// watermarks just as an unsharded reconstructor would. Each shard's
	// slab sequence replays exactly the message sequence the per-frame
	// channel used to carry — a slab flushes when full and every tick
	// flushes all partial slabs, so batching only chunks the stream, never
	// reorders or delays it past a tick boundary.
	slabs := make([]*[]llcMsg, workers)
	for i := range slabs {
		slabs[i] = getLLCSlab()
	}
	flushShard := func(i int) {
		if len(*slabs[i]) == 0 {
			return
		}
		llcIn[i] <- slabs[i]
		slabs[i] = getLLCSlab()
	}
	var uerr error
	count := 0
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			uerr = fmt.Errorf("core: jframe stream: %w", err)
			break
		}
		observeJFrame(res, cfg, sink, ps, j)
		// The frame crosses a channel inside a slab: read everything the
		// router still needs before handing the driver's reference to the
		// shard worker (which releases it after processing).
		univUS := j.UnivUS
		if j.Valid {
			shard := int(macHash(llc.ConversationKey(j)) % uint64(workers))
			*slabs[shard] = append(*slabs[shard], llcMsg{j: j})
			if len(*slabs[shard]) >= llcBatchSize {
				flushShard(shard)
			}
		} else {
			j.Release()
		}
		count++
		if count%tickEvery == 0 {
			for i := range llcIn {
				*slabs[i] = append(*slabs[i], llcMsg{tickUS: univUS})
				flushShard(i)
			}
		}
	}
	for i := range llcIn {
		flushShard(i)
		putLLCSlab(slabs[i])
		close(llcIn[i])
	}
	<-mergeDone
	tWG.Wait()
	ps.absorb()
	if uerr != nil {
		return uerr
	}

	ta := analyzers[0]
	for _, o := range analyzers[1:] {
		ta.Absorb(o)
	}
	res.Transport = ta
	res.UnifyStats = stats()
	return nil
}

// llcShardWorker runs one conversation shard's reconstructor, draining
// message slabs from the router and forwarding closed exchanges (pre-routed
// to their transport shard) and watermarks to the merger in batches. Slabs
// return to their pool here, after the last message is consumed.
func llcShardWorker(id, tShards int, in <-chan *[]llcMsg, out chan<- mergeMsg) {
	rec := llc.NewReconstructor()
	var batch []routedExchange
	route := func(exs []*llc.Exchange) {
		for _, ex := range exs {
			batch = append(batch, routedExchange{ex: ex, shard: transport.FlowShard(ex, tShards)})
		}
	}
	msgs := 0
	for sp := range in {
		for _, m := range *sp {
			if m.j != nil {
				rec.Process(m.j)
				// The router handed its reference over; the reconstructor
				// retained whatever it stored.
				m.j.Release()
			} else {
				rec.Tick(m.tickUS)
			}
			route(rec.Take())
			msgs++
			if msgs >= flushEvery || len(batch) >= exchangeBatch {
				out <- mergeMsg{worker: id, exchanges: batch, watermark: rec.Watermark()}
				batch, msgs = nil, 0
			}
		}
		putLLCSlab(sp)
	}
	route(rec.Flush())
	st := rec.Stats
	out <- mergeMsg{worker: id, exchanges: batch, watermark: math.MaxInt64, stats: &st}
}

// exchangeHeap orders routed exchanges by the canonical close key.
type exchangeHeap []routedExchange

func (h exchangeHeap) Len() int           { return len(h) }
func (h exchangeHeap) Less(i, j int) bool { return exchangeLess(h[i].ex, h[j].ex) }
func (h exchangeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *exchangeHeap) Push(x any)        { *h = append(*h, x.(routedExchange)) }
func (h *exchangeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = routedExchange{}
	*h = old[:n-1]
	return e
}

// mergeExchanges re-serializes the shards' exchange streams into canonical
// close order. An exchange is released once its close stamp lies strictly
// below every shard's watermark — at that point no shard can still emit an
// earlier one — then appended to its flow's transport shard slab, which
// ships when full (and finally at end of stream). Closes the transport
// channels when all shards have finished.
func mergeExchanges(in <-chan mergeMsg, tIn []chan *[]*llc.Exchange, res *Result, cfg Config, sink *Sink, ps *passSet, workers int) {
	wm := make([]int64, workers)
	for i := range wm {
		wm[i] = math.MinInt64
	}
	slabs := make([]*[]*llc.Exchange, len(tIn))
	for i := range slabs {
		slabs[i] = getExchSlab()
	}
	h := &exchangeHeap{}
	release := func(limit int64) {
		for h.Len() > 0 && (*h)[0].ex.CloseUS < limit {
			re := heap.Pop(h).(routedExchange)
			deliverExchange(res, cfg, sink, ps, re.ex)
			*slabs[re.shard] = append(*slabs[re.shard], re.ex)
			if len(*slabs[re.shard]) >= exchangeSlab {
				tIn[re.shard] <- slabs[re.shard]
				slabs[re.shard] = getExchSlab()
			}
		}
	}
	for m := range in {
		for _, re := range m.exchanges {
			heap.Push(h, re)
		}
		if m.watermark > wm[m.worker] {
			wm[m.worker] = m.watermark
		}
		if m.stats != nil {
			res.LLCStats.Add(*m.stats)
		}
		low := wm[0]
		for _, v := range wm[1:] {
			if v < low {
				low = v
			}
		}
		release(low)
	}
	release(math.MaxInt64)
	for i := range tIn {
		if len(*slabs[i]) > 0 {
			tIn[i] <- slabs[i]
		} else {
			putExchSlab(slabs[i])
		}
		close(tIn[i])
	}
}

// macHash is FNV-1a over a MAC address, for shard routing — hand-rolled
// because it runs once per valid jframe and hash/fnv's interface-based
// hasher would allocate on this hot path.
func macHash(m dot80211.MAC) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range m {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// faultSource is a trace source that can report a mid-stream failure after
// the pass. The unifier's contract is drop-radio-on-error (a dead monitor
// must not kill a building-wide merge mid-stream), but for file-backed
// sources an I/O error is not a dead radio: silently analyzing the
// truncated remainder would be wrong output with exit 0. So sources latch
// non-EOF failures and RunFrom turns them into a pipeline error once the
// pass completes.
type faultSource interface {
	unify.Source
	// fault returns the source's latched open/read error (nil after a
	// clean end of trace).
	fault() error
}

// sourceFaults collects the first latched fault across per-radio sources.
func sourceFaults(sources map[int32]unify.Source) error {
	radios := make([]int32, 0, len(sources))
	for r := range sources {
		radios = append(radios, r)
	}
	sort.Slice(radios, func(i, j int) bool { return radios[i] < radios[j] })
	for _, r := range radios {
		if fs, ok := sources[r].(faultSource); ok {
			if err := fs.fault(); err != nil {
				return fmt.Errorf("core: trace for radio %d: %w", r, err)
			}
		}
	}
	return nil
}

// readerSource adapts one TraceSet radio to unify.Source, streaming the
// trace block by block. The stream opens lazily on first Next (the unifier
// skips unsynchronized radios, which must not pin file descriptors) and
// closes itself at end of trace or on the first read error.
type readerSource struct {
	ts    *tracefile.TraceSet
	radio int32
	r     *tracefile.Reader
	rc    io.Closer
	done  bool
	err   error // non-EOF open/read/close failure
}

func (s *readerSource) fault() error { return s.err }

func (s *readerSource) Next() (tracefile.Record, error) {
	if s.done {
		return tracefile.Record{}, io.EOF
	}
	if s.r == nil {
		rc, err := s.ts.Open(s.radio)
		if err != nil {
			s.done, s.err = true, err
			return tracefile.Record{}, err
		}
		s.rc = rc
		s.r = tracefile.NewReader(rc)
	}
	rec, err := s.r.Next()
	if err != nil {
		s.done = true
		cerr := s.rc.Close()
		if err == io.EOF && cerr != nil {
			err = cerr
		}
		if err != io.EOF {
			s.err = err
		}
		return tracefile.Record{}, err
	}
	return rec, nil
}

// recBatch is a prefetched run of records whose frame bytes live in one
// shared arena: block decompression happens in batches on the prefetch
// goroutine, and since records borrow their frames from the reader's
// block buffer, each frame is copied into the arena before the batch
// crosses the channel. Batches recycle through a pool once the consumer
// moves past them.
type recBatch struct {
	recs  []tracefile.Record
	arena []byte
}

var recBatchPool = sync.Pool{New: func() any { return new(recBatch) }}

// add appends a record, copying its borrowed frame into the arena.
func (b *recBatch) add(rec tracefile.Record) {
	if rec.Frame != nil {
		off := len(b.arena)
		// An arena growth strands earlier frames on the old backing
		// array — still valid copies, and the grown capacity persists
		// across reuse, so growth stops after warmup.
		b.arena = append(b.arena, rec.Frame...)
		rec.Frame = b.arena[off:len(b.arena):len(b.arena)]
	}
	b.recs = append(b.recs, rec)
}

// prefetchSource decodes a radio's compressed trace in a background
// goroutine, handing record batches to the unifier through a channel so
// per-radio decompression overlaps with unification (and with every other
// radio's decompression). Read errors end the stream early, matching the
// unifier's drop-radio-on-error behaviour for direct readers.
type prefetchSource struct {
	ch  <-chan *recBatch
	cur *recBatch
	i   int
	// errp is written by the prefetch goroutine before it closes ch, so
	// reading it after the channel drains is race-free.
	errp *error
}

func (s *prefetchSource) fault() error { return *s.errp }

func newPrefetchSource(ts *tracefile.TraceSet, radio int32) *prefetchSource {
	ch := make(chan *recBatch, prefetchChanBuf)
	errp := new(error)
	go func() {
		defer close(ch)
		rc, err := ts.Open(radio)
		if err != nil {
			*errp = err
			return
		}
		defer rc.Close()
		r := tracefile.NewReader(rc)
		batch := recBatchPool.Get().(*recBatch)
		batch.recs, batch.arena = batch.recs[:0], batch.arena[:0]
		for {
			rec, err := r.Next()
			if err != nil {
				if err != io.EOF {
					*errp = err
				}
				if len(batch.recs) > 0 {
					ch <- batch
				} else {
					recBatchPool.Put(batch)
				}
				return
			}
			batch.add(rec)
			if len(batch.recs) == prefetchBatch {
				ch <- batch
				batch = recBatchPool.Get().(*recBatch)
				batch.recs, batch.arena = batch.recs[:0], batch.arena[:0]
			}
		}
	}()
	return &prefetchSource{ch: ch, errp: errp}
}

// Next hands out the current batch's records one at a time. Returned
// records borrow their frames from the batch arena, which is recycled
// when the consumer crosses the next batch boundary — the unifier copies
// each record before asking for another, which satisfies that.
func (s *prefetchSource) Next() (tracefile.Record, error) {
	for s.cur == nil || s.i >= len(s.cur.recs) {
		if s.cur != nil {
			recBatchPool.Put(s.cur)
			s.cur = nil
		}
		cur, ok := <-s.ch
		if !ok {
			return tracefile.Record{}, io.EOF
		}
		s.cur, s.i = cur, 0
	}
	rec := s.cur.recs[s.i]
	s.i++
	return rec, nil
}

// TracesFromBuffers converts the scenario's buffer map into the byte map
// Run consumes.
func TracesFromBuffers(bufs map[int32]*bytes.Buffer) map[int32][]byte {
	out := make(map[int32][]byte, len(bufs))
	for r, b := range bufs {
		out[r] = b.Bytes()
	}
	return out
}
