// Package core wires Jigsaw's stages into the single pipeline the paper
// describes: bootstrap synchronization over the first window of every
// per-radio trace (§4.1), streaming frame unification with continuous
// resynchronization (§4.2), link-layer reconstruction into transmission
// attempts and frame exchanges (§5.1), and transport-layer flow analysis
// with the TCP delivery oracle (§5.2).
//
// The pipeline operates in a single pass over the trace data (after the
// bootstrap pre-scan), the property that lets the real system run online,
// faster than real time.
package core

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/llc"
	"repro/internal/timesync"
	"repro/internal/tracefile"
	"repro/internal/transport"
	"repro/internal/unify"
)

// Config tunes the pipeline.
type Config struct {
	// Unify holds the unifier's operating point (search window, resync
	// threshold, skew compensation).
	Unify unify.Config
	// BootstrapWindowUS is how much of each trace the bootstrap examines
	// (paper: the first second).
	BootstrapWindowUS int64
	// KeepExchanges retains all frame exchanges in the result (memory
	// permitting); analyses that stream should use the Sink instead.
	KeepExchanges bool
	// KeepJFrames retains all jframes (for visualization and small runs).
	KeepJFrames bool
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		Unify:             unify.DefaultConfig(),
		BootstrapWindowUS: timesync.DefaultWindowUS,
	}
}

// Sink receives pipeline products as they stream. Any callback may be nil.
type Sink struct {
	OnJFrame   func(*unify.JFrame)
	OnExchange func(*llc.Exchange)
}

// DispersionHistogram buckets jframe group dispersion in 1 µs bins up to
// its length; the tail bucket absorbs the rest. Only multi-instance jframes
// count (a singleton has no dispersion), matching Figure 4.
type DispersionHistogram struct {
	Bins  []int64 // Bins[i] counts dispersion == i µs
	Tail  int64
	Total int64
}

// Add records one dispersion value.
func (h *DispersionHistogram) Add(us int64) {
	h.Total++
	if int(us) < len(h.Bins) {
		h.Bins[us]++
	} else {
		h.Tail++
	}
}

// Percentile returns the smallest dispersion d such that at least p
// (0..1) of jframes have dispersion ≤ d; -1 if the answer lies in the tail.
func (h *DispersionHistogram) Percentile(p float64) int64 {
	if h.Total == 0 {
		return 0
	}
	need := int64(p * float64(h.Total))
	var cum int64
	for i, c := range h.Bins {
		cum += c
		if cum >= need {
			return int64(i)
		}
	}
	return -1
}

// Result summarizes one pipeline run.
type Result struct {
	Bootstrap  *timesync.Result
	UnifyStats unify.Stats
	LLCStats   llc.Stats
	Transport  *transport.Analyzer
	Dispersion DispersionHistogram

	// Retained products (per Config).
	JFrames   []*unify.JFrame
	Exchanges []*llc.Exchange
}

// Run executes the full pipeline over per-radio compressed traces (the
// bytes produced by tracefile.Writer). clockGroups lists radios sharing a
// physical clock for cross-channel bridging.
func Run(traces map[int32][]byte, clockGroups [][]int32, cfg Config, sink *Sink) (*Result, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: no traces")
	}
	if cfg.BootstrapWindowUS == 0 {
		cfg.BootstrapWindowUS = timesync.DefaultWindowUS
	}
	if cfg.Unify.SearchWindowUS == 0 {
		cfg.Unify = unify.DefaultConfig()
	}
	if sink == nil {
		sink = &Sink{}
	}

	// Phase 1: bootstrap over each trace's first window.
	readers := make(map[int32]*tracefile.Reader, len(traces))
	for r, b := range traces {
		readers[r] = tracefile.NewReader(bytes.NewReader(b))
	}
	window, err := timesync.CollectWindow(readers, cfg.BootstrapWindowUS)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap window: %w", err)
	}
	boot, err := timesync.Bootstrap(window, clockGroups)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap: %w", err)
	}

	// Phase 2: single pass — unify, reconstruct, analyze.
	sources := make(map[int32]unify.Source, len(traces))
	for r, b := range traces {
		sources[r] = &readerSource{r: tracefile.NewReader(bytes.NewReader(b))}
	}
	u := unify.New(cfg.Unify, sources, boot)
	rec := llc.NewReconstructor()
	ta := transport.NewAnalyzer()

	res := &Result{
		Bootstrap: boot,
		Transport: ta,
		Dispersion: DispersionHistogram{
			Bins: make([]int64, 1000),
		},
	}

	consume := func(exs []*llc.Exchange) {
		for _, ex := range exs {
			ta.AddExchange(ex)
			if sink.OnExchange != nil {
				sink.OnExchange(ex)
			}
			if cfg.KeepExchanges {
				res.Exchanges = append(res.Exchanges, ex)
			}
		}
	}

	for {
		j, err := u.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: unify: %w", err)
		}
		if len(j.Instances) >= 2 {
			res.Dispersion.Add(j.DispersionUS)
		}
		if sink.OnJFrame != nil {
			sink.OnJFrame(j)
		}
		if cfg.KeepJFrames {
			res.JFrames = append(res.JFrames, j)
		}
		rec.Process(j)
		consume(rec.Take())
	}
	consume(rec.Flush())

	res.UnifyStats = u.Stats
	res.LLCStats = rec.Stats
	return res, nil
}

// readerSource adapts tracefile.Reader to unify.Source.
type readerSource struct {
	r *tracefile.Reader
}

func (s *readerSource) Next() (tracefile.Record, error) { return s.r.Next() }

// TracesFromBuffers converts the scenario's buffer map into the byte map
// Run consumes.
func TracesFromBuffers(bufs map[int32]*bytes.Buffer) map[int32][]byte {
	out := make(map[int32][]byte, len(bufs))
	for r, b := range bufs {
		out[r] = b.Bytes()
	}
	return out
}
