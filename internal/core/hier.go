// Hierarchical pipeline entry: the campus-scale path. Per-building unify
// workers (internal/hmerge, possibly separate processes) have already
// bootstrapped and unified each building into a sorted intermediate jframe
// stream; RunHierarchical performs the level-2 global k-way merge over
// those streams and drives the ordinary reconstruction / transport /
// analysis-pass pipeline over the merged sequence. Every report that works
// on a flat Result works on a hierarchical one unchanged.
//
// Correctness rests on two facts. First, each building's stream is sorted
// by UnivUS (the unifier's emission-order invariant, enforced by the
// codec), so the k-way merge by (UnivUS, stream index) yields one globally
// ordered jframe sequence — the same near-time-ordered shape the
// reconstruction stage consumes on the flat path. Second, buildings are
// radio- and conversation-disjoint: each building bootstraps its own
// universal timeline, and llc reconstruction state is keyed by transmitter
// MAC, so a conversation's frames all come from one building and its
// exchanges' deterministic close stamps are unaffected by how other
// buildings' frames interleave.
package core

import (
	"fmt"
	"runtime"

	"repro/internal/hmerge"
	"repro/internal/timesync"
	"repro/internal/unify"
)

// aggregateBootstrap unions per-building bootstrap results into one
// campus-level timesync.Result. Buildings are radio-disjoint by
// construction; a radio appearing in two streams means two workers unified
// overlapping trace sets, which would double-count its frames — a hard
// error. The first stream's root anchors the nominal campus timeline
// (each building's offsets remain relative to its own root; conversations
// never span buildings, so no cross-building alignment is needed).
func aggregateBootstrap(streams []*hmerge.Stream) (*timesync.Result, error) {
	agg := &timesync.Result{OffsetUS: make(map[int32]int64)}
	for i, s := range streams {
		if s.Meta == nil {
			return nil, fmt.Errorf("core: hierarchical stream %d has no metadata", i)
		}
		b := s.Meta.Bootstrap
		for r, off := range b.OffsetUS {
			if _, dup := agg.OffsetUS[r]; dup {
				return nil, fmt.Errorf("core: radio %d appears in two hierarchical streams (buildings must be radio-disjoint)", r)
			}
			agg.OffsetUS[r] = off
		}
		if i == 0 {
			agg.Root = b.Root
		}
		agg.Unsynced = append(agg.Unsynced, b.Unsynced...)
		agg.RefFrames += b.RefFrames
		agg.Candidates += b.Candidates
	}
	return agg, nil
}

// RunHierarchical executes the global merge over per-building intermediate
// streams, driving the same pipeline stages and analysis passes as RunFrom.
// The streams are consumed (and not closed — the caller owns them). The
// Result's Bootstrap and UnifyStats aggregate the buildings' sidecar
// metadata: offsets union (radios must be disjoint), counters sum.
// Config.Unify and Config.BootstrapWindowUS are ignored — both stages
// already ran in the per-building workers.
func RunHierarchical(streams []*hmerge.Stream, cfg Config, sink *Sink) (*Result, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("core: no streams")
	}
	if sink == nil {
		sink = &Sink{}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SnapshotEveryUS > 0 && workers > 1 {
		return nil, fmt.Errorf("core: SnapshotEveryUS requires the serial path (Workers=1), have %d workers", workers)
	}

	boot, err := aggregateBootstrap(streams)
	if err != nil {
		return nil, err
	}
	var ustats unify.Stats
	for _, s := range streams {
		ustats.Add(s.Meta.Unify)
	}

	res := &Result{
		Bootstrap: boot,
		Dispersion: DispersionHistogram{
			Bins: make([]int64, 1000),
		},
	}
	// With multiple workers the merger prefetches each stream's decode in
	// its own goroutine — the hierarchical analogue of the flat path's
	// per-radio prefetchers.
	merger := hmerge.NewMerger(streams, workers > 1)
	stats := func() unify.Stats { return ustats }
	ps := newPassSet(cfg.Passes)
	if workers <= 1 {
		err = driveSerial(merger, stats, cfg, sink, ps, res)
	} else {
		err = driveParallel(merger, stats, cfg, sink, ps, res, workers)
	}
	if err != nil {
		return nil, err
	}
	ps.finish(res)
	return res, nil
}

// RunHierarchicalPaths opens each intermediate stream file (with its
// metadata sidecar) and runs the global merge over them.
func RunHierarchicalPaths(paths []string, cfg Config, sink *Sink) (*Result, error) {
	streams, err := hmerge.OpenStreams(paths)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, s := range streams {
			_ = s.Close() // read-side cleanup; stream errors surface via the merge
		}
	}()
	return RunHierarchical(streams, cfg, sink)
}
