package core

import (
	"fmt"
	"testing"

	"repro/internal/tracefile"
)

// TestBatchedDispatchDeterministic drives the parallel pipeline with the
// router's slab flush threshold forced to degenerate sizes (1 = the old
// per-frame hop, 7 = slabs that straddle tick boundaries, 64 = the shipped
// default) at several worker counts, asserting every combination emits a
// byte-identical jframe stream and analysis result. The merge contract —
// canonical close order restored by the watermark-gated heap — is what
// makes batch size invisible; this test pins that invariant.
func TestBatchedDispatchDeterministic(t *testing.T) {
	out := scenarioOut(t)
	ts := tracefile.NewBufferSet(TracesFromBuffers(out.Traces))

	run := func(workers int) (*Result, string) {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.KeepExchanges = true
		cfg.KeepJFrames = true
		d := newJFDigest()
		res, err := RunFrom(ts, out.ClockGroups, cfg, &Sink{OnJFrame: d.observe})
		if err != nil {
			t.Fatal(err)
		}
		return res, d.sum()
	}

	defer func(orig int) { llcBatchSize = orig }(llcBatchSize)

	llcBatchSize = llcBatch
	ref, refDigest := run(1)

	for _, batch := range []int{1, 7, 64} {
		for _, workers := range []int{1, 2, 4} {
			llcBatchSize = batch
			res, digest := run(workers)
			label := fmt.Sprintf("batch=%d/workers=%d", batch, workers)
			requireIdentical(t, label, ref, res)
			if digest != refDigest {
				t.Errorf("%s: jframe stream digest differs from reference", label)
			}
			if n := slabBalance.Load(); n != 0 {
				t.Fatalf("%s: %d slabs outstanding after run; every slab must return to its pool", label, n)
			}
		}
	}
}

// TestSlabPoolBalance is the pool-contract fixture for the batched hops: a
// full parallel run must return every router→llc and merge→transport slab
// to its pool — slabs are retained per send and released per drain, never
// per frame.
func TestSlabPoolBalance(t *testing.T) {
	out := scenarioOut(t)
	ts := tracefile.NewBufferSet(TracesFromBuffers(out.Traces))
	cfg := DefaultConfig()
	cfg.Workers = 4
	if _, err := RunFrom(ts, out.ClockGroups, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if n := slabBalance.Load(); n != 0 {
		t.Fatalf("slab balance %d after parallel run, want 0 (get/put must pair per slab)", n)
	}
}
