package core

import (
	"bytes"
	"testing"

	"repro/internal/llc"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tracefile"
	"repro/internal/unify"
)

// runScenario produces traces for pipeline tests (cached across tests).
var cachedOut *scenario.Output

func scenarioOut(t *testing.T) *scenario.Output {
	t.Helper()
	if cachedOut != nil {
		return cachedOut
	}
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 6, 6, 10
	cfg.Day = 60 * sim.Second
	cfg.FlowMeanGap = 6 * sim.Second
	out, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedOut = out
	return out
}

func runPipeline(t *testing.T, cfg Config) (*Result, *scenario.Output) {
	t.Helper()
	out := scenarioOut(t)
	res, err := Run(TracesFromBuffers(out.Traces), out.ClockGroups, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

func TestPipelineEndToEnd(t *testing.T) {
	res, out := runPipeline(t, DefaultConfig())
	if !res.Bootstrap.Synced() {
		t.Errorf("bootstrap left radios unsynced: %v", res.Bootstrap.Unsynced)
	}
	if res.UnifyStats.JFrames == 0 {
		t.Fatal("no jframes")
	}
	// Unification factor: the monitors make multiple observations of most
	// transmissions; jframes must be far fewer than records.
	if res.UnifyStats.JFrames >= res.UnifyStats.Events {
		t.Errorf("no unification: %d jframes from %d events",
			res.UnifyStats.JFrames, res.UnifyStats.Events)
	}
	// The number of FCS-valid jframes should approximate the number of
	// ground-truth transmissions decoded by at least one monitor: each such
	// transmission unifies into one jframe. (A modest surplus comes from
	// duplicates heard by disjoint radio sets with residual clock error.)
	var capturedValidTx int64
	for _, tx := range out.Truth {
		if out.CapturedValid[tx.ID] > 0 && tx.Kind != scenario.TxNoise {
			capturedValidTx++
		}
	}
	cfg := DefaultConfig()
	cfg.KeepJFrames = true
	resK, err := Run(TracesFromBuffers(out.Traces), out.ClockGroups, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var validJF int64
	for _, j := range resK.JFrames {
		if j.Valid {
			validJF++
		}
	}
	// The surplus sits near 10–20% in this sparse 6-pod deployment (quiet
	// radios coast and their receptions occasionally split off); it shrinks
	// with monitor density like the dispersion tail.
	ratio := float64(validJF) / float64(capturedValidTx)
	if ratio < 0.95 || ratio > 1.3 {
		t.Errorf("valid jframes / decoded transmissions = %.3f (jf=%d captured=%d); unification is over- or under-merging",
			ratio, validJF, capturedValidTx)
	}
	if res.LLCStats.Exchanges == 0 {
		t.Error("no frame exchanges reconstructed")
	}
	if res.Transport.Stats.CompleteFlows == 0 {
		t.Error("no TCP flows with complete handshakes")
	}
}

func TestPipelineDispersionFig4Shape(t *testing.T) {
	// Fig. 4's 90%-under-10 µs knee holds even in this deliberately sparse
	// 6-pod test deployment; the p99-under-20 µs figure needs the paper's
	// monitor density (the full-scale benches reproduce it — the tail is
	// governed by how long quiet radios coast, which falls with density,
	// exactly the paper's argument for 39 pods).
	res, _ := runPipeline(t, DefaultConfig())
	p90 := res.Dispersion.Percentile(0.90)
	p95 := res.Dispersion.Percentile(0.95)
	if p90 < 0 || p90 >= 10 {
		t.Errorf("p90 dispersion = %d µs, want < 10 (Fig. 4)", p90)
	}
	if p95 < 0 || p95 > 20 {
		t.Errorf("p95 dispersion = %d µs, want ≤ 20 even when sparse", p95)
	}
	if res.Dispersion.Total == 0 {
		t.Fatal("no dispersion samples")
	}
}

func TestPipelineDeliveryVerdicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepExchanges = true
	res, _ := runPipeline(t, cfg)
	counts := map[llc.Delivery]int{}
	for _, ex := range res.Exchanges {
		counts[ex.Delivery]++
	}
	if counts[llc.DeliveryObserved] == 0 {
		t.Error("no exchanges with observed ACKs")
	}
	if counts[llc.DeliveryBroadcast] == 0 {
		t.Error("no broadcast exchanges (beacons, ARPs)")
	}
	// The oracle should have resolved at least some unknowns.
	if res.Transport.Stats.TCPSegments == 0 {
		t.Error("no TCP segments decoded from exchanges")
	}
}

func TestPipelineInferenceRateSmall(t *testing.T) {
	// §5.1: only 0.58% of attempts and 0.14% of exchanges need inference.
	// Coverage here is denser than the paper's, so just require "small".
	res, _ := runPipeline(t, DefaultConfig())
	st := res.LLCStats
	if st.Attempts == 0 {
		t.Fatal("no attempts")
	}
	attemptRate := float64(st.InferredAttempts) / float64(st.Attempts)
	exchangeRate := float64(st.InferredExchanges) / float64(st.Exchanges)
	if attemptRate > 0.05 {
		t.Errorf("inferred attempt rate = %.4f, want < 5%%", attemptRate)
	}
	if exchangeRate > 0.05 {
		t.Errorf("inferred exchange rate = %.4f, want < 5%%", exchangeRate)
	}
}

func TestPipelineSinkStreams(t *testing.T) {
	out := scenarioOut(t)
	var jframes, exchanges int
	sink := &Sink{
		OnJFrame:   func(*unify.JFrame) { jframes++ },
		OnExchange: func(*llc.Exchange) { exchanges++ },
	}
	res, err := Run(TracesFromBuffers(out.Traces), out.ClockGroups, DefaultConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if int64(jframes) != res.UnifyStats.JFrames {
		t.Errorf("sink saw %d jframes, stats say %d", jframes, res.UnifyStats.JFrames)
	}
	if int64(exchanges) != res.LLCStats.Exchanges {
		t.Errorf("sink saw %d exchanges, stats say %d", exchanges, res.LLCStats.Exchanges)
	}
}

func TestPipelineKeepJFrames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepJFrames = true
	res, _ := runPipeline(t, cfg)
	if int64(len(res.JFrames)) != res.UnifyStats.JFrames {
		t.Errorf("kept %d jframes, stats say %d", len(res.JFrames), res.UnifyStats.JFrames)
	}
	prev := int64(-1 << 62)
	for _, j := range res.JFrames {
		if j.UnivUS < prev {
			t.Fatal("jframes out of order")
		}
		prev = j.UnivUS
	}
}

func TestPipelineEmptyInput(t *testing.T) {
	if _, err := Run(nil, nil, DefaultConfig(), nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDispersionHistogram(t *testing.T) {
	h := DispersionHistogram{Bins: make([]int64, 10)}
	for i := 0; i < 90; i++ {
		h.Add(2)
	}
	for i := 0; i < 10; i++ {
		h.Add(50) // tail
	}
	if h.Total != 100 || h.Tail != 10 {
		t.Errorf("total=%d tail=%d", h.Total, h.Tail)
	}
	if p := h.Percentile(0.5); p != 2 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(0.99); p != -1 {
		t.Errorf("p99 = %d, want -1 (in tail)", p)
	}
	var empty DispersionHistogram
	if empty.Percentile(0.5) != 0 {
		t.Error("empty percentile")
	}
}

func TestPipelineCrossChannelBridging(t *testing.T) {
	// Radios tuned to channels 1, 6 and 11 never share a frame over the
	// air; only the per-monitor shared clocks (§3.3, §4.1) can bridge
	// them. The bootstrap must still cover every radio.
	out := scenarioOut(t)
	channels := map[uint8]int{}
	res, err := Run(TracesFromBuffers(out.Traces), out.ClockGroups, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for rid, buf := range out.Traces {
		recs, err := tracefile.ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			continue
		}
		channels[recs[0].Channel]++
		if _, ok := res.Bootstrap.OffsetUS[rid]; !ok {
			t.Errorf("radio %d (ch %d) not bridged into universal time", rid, recs[0].Channel)
		}
	}
	if len(channels) < 3 {
		t.Fatalf("scenario only used %d channels", len(channels))
	}

	// Ablation: without the clock groups, the channels partition.
	res2, err := Run(TracesFromBuffers(out.Traces), nil, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Bootstrap.Synced() {
		t.Error("bootstrap synced across disjoint channels without clock groups")
	}
}
