package mac

import (
	"testing"

	"repro/internal/building"
	"repro/internal/dot80211"
	"repro/internal/sim"
)

// TestRoamingHandoff: a client whose link collapses (teleported across the
// building mid-run) must scan, find the AP on another channel, send a
// disassociation the old AP hears, and complete a reassociation — with the
// ground-truth hook reporting the right endpoints.
func TestRoamingHandoff(t *testing.T) {
	w := newWorld(7)
	ap1 := NewAP(w.eng, w.med, building.Point{X: 5, Y: 15, Z: 2.5},
		Config{ID: 1, MAC: apMAC(1), Channel: 1}, "test-net")
	ap2 := NewAP(w.eng, w.med, building.Point{X: 60, Y: 15, Z: 2.5},
		Config{ID: 2, MAC: apMAC(2), Channel: 6}, "test-net")
	cl := w.client(3, 7, PHY80211g)

	var from, to dot80211.MAC
	roams := 0
	cl.OnRoam = func(f, tt dot80211.MAC) { from, to = f, tt; roams++ }
	cl.EnableRoaming(RoamConfig{HysteresisDB: 4, ScanInterval: 2 * sim.Second})
	w.eng.After(0, func() { cl.Associate(ap1.MAC()) })
	// Mid-flow RSSI collapse: the client "walks" out of ap1's cell.
	w.eng.At(3*sim.Second, func() {
		w.med.SetPosition(cl.ID(), building.Point{X: 62, Y: 14, Z: 1})
	})
	w.eng.Run(12 * sim.Second)

	if roams == 0 {
		t.Fatal("client never roamed despite a dead serving link")
	}
	if from != ap1.MAC() || to != ap2.MAC() {
		t.Fatalf("roam endpoints wrong: %v -> %v", from, to)
	}
	if !cl.IsAssociated() || cl.BSSID() != ap2.MAC() {
		t.Fatalf("client not associated to ap2 after roam: assoc=%v bssid=%v",
			cl.IsAssociated(), cl.BSSID())
	}
	if _, ok := ap2.Associated(cl.MAC()); !ok {
		t.Error("ap2 has no association record for the client")
	}
	if cl.Channel() != ap2.Channel() {
		t.Errorf("client on channel %d, ap2 on %d", cl.Channel(), ap2.Channel())
	}
	scans, handoffs := cl.RoamStats()
	if scans == 0 || handoffs != roams {
		t.Errorf("roam stats inconsistent: scans=%d handoffs=%d roams=%d", scans, handoffs, roams)
	}
}

// TestRoamingStaysPut: a healthy link with a clearly weaker alternative
// must survive periodic background scans without a single handoff — the
// hysteresis/ping-pong guard.
func TestRoamingStaysPut(t *testing.T) {
	w := newWorld(9)
	ap1 := NewAP(w.eng, w.med, building.Point{X: 10, Y: 15, Z: 2.5},
		Config{ID: 1, MAC: apMAC(1), Channel: 1}, "test-net")
	NewAP(w.eng, w.med, building.Point{X: 45, Y: 15, Z: 2.5},
		Config{ID: 2, MAC: apMAC(2), Channel: 6}, "test-net")
	cl := w.client(3, 10.5, PHY80211g)
	roams := 0
	cl.OnRoam = func(_, _ dot80211.MAC) { roams++ }
	cl.EnableRoaming(RoamConfig{ScanInterval: 2 * sim.Second})
	w.eng.After(0, func() { cl.Associate(ap1.MAC()) })
	w.eng.Run(12 * sim.Second)

	scans, _ := cl.RoamStats()
	if scans < 2 {
		t.Errorf("background scans = %d, want several over 12s", scans)
	}
	if roams != 0 {
		t.Errorf("client ping-ponged: %d roams off a healthy link", roams)
	}
	if !cl.IsAssociated() || cl.BSSID() != ap1.MAC() {
		t.Errorf("client left ap1: assoc=%v bssid=%v", cl.IsAssociated(), cl.BSSID())
	}
}

// TestARFHandoffEdgeCases: table-driven checks of the rate-adaptation
// state around reassociation. ARF state is per-destination and must be
// dropped on a handoff: neither fallback streaks nor success streaks span
// an AP change.
func TestARFHandoffEdgeCases(t *testing.T) {
	dst1, dst2 := apMAC(1), apMAC(2)
	type op struct {
		ev  string // "ok", "fail", "reset"
		dst dot80211.MAC
	}
	rep := func(n int, ev string, dst dot80211.MAC) []op {
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{ev, dst}
		}
		return ops
	}
	cases := []struct {
		name string
		phy  PHYMode
		ops  []op
		// wantIdx is the expected ladder index toward wantDst after the
		// ops; -2 means "the fresh starting index" (ladder length - 2).
		wantDst   dot80211.MAC
		wantFresh bool // state must not exist (never used since reset)
		wantDelta int  // expected offset from the fresh starting index
	}{
		{
			name:    "two failures step down",
			phy:     PHY80211g,
			ops:     rep(2, "fail", dst1),
			wantDst: dst1, wantDelta: -1,
		},
		{
			name:      "reset clears learned fallback",
			phy:       PHY80211g,
			ops:       append(rep(4, "fail", dst1), op{"reset", dst1}),
			wantDst:   dst1,
			wantFresh: true,
		},
		{
			name: "fallback streak does not span an AP change",
			phy:  PHY80211g,
			// One failure toward the old AP, reset (the handoff), one
			// failure toward the new AP: a streak that would step down if
			// it carried across, but must not.
			ops:     append(append(rep(1, "fail", dst1), op{"reset", dst1}), rep(1, "fail", dst2)...),
			wantDst: dst2, wantDelta: 0,
		},
		{
			name: "success streak does not span an AP change",
			phy:  PHY80211g,
			// Nine successes (one shy of a step up), reset, nine more:
			// still no step up.
			ops:     append(append(rep(9, "ok", dst1), op{"reset", dst1}), rep(9, "ok", dst2)...),
			wantDst: dst2, wantDelta: 0,
		},
		{
			name:    "11b ladder resets to its own start",
			phy:     PHY80211b,
			ops:     append(rep(2, "fail", dst1), op{"reset", dst1}),
			wantDst: dst1, wantFresh: true,
		},
		{
			name: "post-reset adaptation works from scratch",
			phy:  PHY80211g,
			// After the reset the new link still adapts: two failures
			// step down one rung exactly as on a fresh station.
			ops:     append(append(rep(6, "fail", dst1), op{"reset", dst1}), rep(2, "fail", dst2)...),
			wantDst: dst2, wantDelta: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newWorld(1)
			st := NewStation(w.eng, w.med, building.Point{X: 1, Y: 1, Z: 1},
				Config{ID: 99, MAC: cliMAC(99), Channel: 1, PHY: tc.phy})
			for _, o := range tc.ops {
				switch o.ev {
				case "ok":
					st.rateFor(o.dst) // materialize like a transmission would
					st.rateOK(o.dst)
				case "fail":
					st.rateFor(o.dst)
					st.rateFail(o.dst)
				case "reset":
					st.ResetRates()
				}
			}
			if tc.wantFresh {
				if got := st.rateIndex(tc.wantDst); got != -1 {
					t.Fatalf("state toward %v survived reset: idx=%d", tc.wantDst, got)
				}
				// And the next use starts at the ladder's fresh index.
				fresh := len(st.ladder()) - 2
				if got := st.rateFor(tc.wantDst); got != st.ladder()[fresh] {
					t.Fatalf("fresh rate = %v, want ladder[%d]=%v", got, fresh, st.ladder()[fresh])
				}
				return
			}
			fresh := len(st.ladder()) - 2
			want := fresh + tc.wantDelta
			if got := st.rateIndex(tc.wantDst); got != want {
				t.Fatalf("ladder index toward %v = %d, want %d (fresh %d%+d)",
					tc.wantDst, got, want, fresh, tc.wantDelta)
			}
		})
	}
}

// TestClientReassociateResetsRates: the integrated path — Client.Reassociate
// itself must drop ARF state, not just the roaming machinery.
func TestClientReassociateResetsRates(t *testing.T) {
	w := newWorld(4)
	ap1 := w.ap(1, 10)
	cl := w.client(3, 12, PHY80211g)
	w.eng.After(0, func() { cl.Associate(ap1.MAC()) })
	w.eng.Run(2 * sim.Second)
	if !cl.IsAssociated() {
		t.Fatal("setup: association failed")
	}
	// Learn some (bad) rate state toward the AP.
	cl.rateFor(ap1.MAC())
	for i := 0; i < 4; i++ {
		cl.rateFail(ap1.MAC())
	}
	if cl.rateIndex(ap1.MAC()) == -1 {
		t.Fatal("setup: no rate state learned")
	}
	cl.Reassociate(apMAC(2))
	if got := cl.rateIndex(ap1.MAC()); got != -1 {
		t.Fatalf("ARF state toward the old AP survived Reassociate: idx=%d", got)
	}
}
