// Client roaming: the RSSI-threshold handoff state machine a mobile
// station runs. The client tracks its AP's beacon RSSI with an EWMA; when
// the link collapses below a scan threshold (or beacons stop arriving, or
// the periodic background-scan timer fires), it sweeps the channels,
// probing each and collecting per-AP RSSI from probe responses and
// overheard beacons. If the strongest candidate beats the serving AP by a
// hysteresis margin it commits: disassociate on the old channel, retune,
// reset ARF state, and run the association handshake toward the new AP.
//
// Everything the handoff leaves on the air — the disassociation frame, the
// burst of probe requests sweeping channels, the auth/assoc exchange with a
// new BSSID, the rate-ladder restart — is exactly the artifact sequence the
// analysis layer's handoff detector reconstructs from monitor traces.
package mac

import (
	"repro/internal/dot80211"
	"repro/internal/sim"
)

// RoamConfig parameterizes the roaming state machine. Zero fields take the
// defaults below.
type RoamConfig struct {
	// HysteresisDB is how much stronger (in dB) a candidate AP's RSSI must
	// be than the serving AP's before the client roams to it.
	HysteresisDB float64
	// ScanTriggerDBm: when the serving AP's smoothed beacon RSSI falls
	// below this, the client scans immediately instead of waiting for the
	// background-scan timer.
	ScanTriggerDBm float64
	// ScanInterval is the background scan period while roaming is enabled
	// (real supplicants scan periodically even on a healthy link).
	ScanInterval sim.Time
	// ScanDwell is how long the client listens on each channel of a sweep.
	ScanDwell sim.Time
	// ScanCooldown bounds how often RSSI-collapse or beacon-loss triggers
	// may start a sweep, so a dying link doesn't scan back-to-back.
	ScanCooldown sim.Time
}

// Roaming defaults.
const (
	DefaultRoamHysteresisDB = 6.0
	defaultScanTriggerDBm   = -72.0
	defaultScanInterval     = 4 * sim.Second
	defaultScanDwell        = 50 * sim.Millisecond
	defaultScanCooldown     = 1500 * sim.Millisecond
	beaconLossIntervals     = 3    // missed beacons before a loss-triggered scan
	roamEWMAAlpha           = 0.25 // beacon RSSI smoothing
	minJoinRSSIdBm          = -85.0
	scanChannelCount        = 3
)

// scanChannels is the sweep order (the deployment stripes 1/6/11).
var scanChannels = [scanChannelCount]dot80211.Channel{1, 6, 11}

// apSighting is one candidate AP observed during a sweep.
type apSighting struct {
	rssiDBm float64
	channel dot80211.Channel
}

// roamState is the per-client roaming machinery.
type roamState struct {
	c   *Client
	cfg RoamConfig

	curRSSI    float64 // EWMA of serving-AP beacon RSSI
	haveRSSI   bool
	lastBeacon sim.Time

	scanning  bool
	homeCh    dot80211.Channel
	sightings map[dot80211.MAC]apSighting
	lastScan  sim.Time
	scanEpoch int // invalidates in-flight sweep steps after a handoff

	// Stats for tests and reports.
	Scans    int
	Handoffs int
}

// EnableRoaming arms the roaming state machine. Safe to call before or
// after Associate; zero config fields take defaults.
func (c *Client) EnableRoaming(cfg RoamConfig) {
	if cfg.HysteresisDB == 0 {
		cfg.HysteresisDB = DefaultRoamHysteresisDB
	}
	if cfg.ScanTriggerDBm == 0 {
		cfg.ScanTriggerDBm = defaultScanTriggerDBm
	}
	if cfg.ScanInterval == 0 {
		cfg.ScanInterval = defaultScanInterval
	}
	if cfg.ScanDwell == 0 {
		cfg.ScanDwell = defaultScanDwell
	}
	if cfg.ScanCooldown == 0 {
		cfg.ScanCooldown = defaultScanCooldown
	}
	r := &roamState{c: c, cfg: cfg, lastScan: -cfg.ScanCooldown}
	c.roam = r
	c.Station.SnoopMgmt = r.snoopMgmt
	// Desynchronize the periodic scans across clients like real
	// supplicants' jittered scan timers.
	first := sim.Time(c.eng.Rand().Int63n(int64(cfg.ScanInterval)))
	c.eng.After(first, r.periodicScan)
	c.eng.After(BeaconInterval, r.watchdog)
}

// RoamStats reports (scans, handoffs) the state machine has performed;
// zeros when roaming is disabled.
func (c *Client) RoamStats() (scans, handoffs int) {
	if c.roam == nil {
		return 0, 0
	}
	return c.roam.Scans, c.roam.Handoffs
}

// snoopMgmt feeds beacon and probe-response RSSI into the tracker.
func (r *roamState) snoopMgmt(f dot80211.Frame, rssiDBm float64) {
	switch f.Subtype {
	case dot80211.SubtypeBeacon, dot80211.SubtypeProbeResp:
	default:
		return
	}
	if r.scanning {
		// Any AP heard during a sweep is a candidate at the currently
		// tuned channel; keep the strongest sighting per BSSID.
		if cur, ok := r.sightings[f.Addr2]; !ok || rssiDBm > cur.rssiDBm {
			r.sightings[f.Addr2] = apSighting{rssiDBm: rssiDBm, channel: r.c.Channel()}
		}
		return
	}
	if f.Subtype == dot80211.SubtypeBeacon && f.Addr2 == r.c.ap {
		if r.haveRSSI {
			r.curRSSI = roamEWMAAlpha*rssiDBm + (1-roamEWMAAlpha)*r.curRSSI
		} else {
			r.curRSSI, r.haveRSSI = rssiDBm, true
		}
		r.lastBeacon = r.c.eng.Now()
		if r.c.IsAssociated() && r.curRSSI < r.cfg.ScanTriggerDBm {
			r.startScan()
		}
	}
}

// watchdog detects total beacon loss (mid-flow RSSI collapse past the
// decode floor leaves no beacons to measure) and stalled associations.
func (r *roamState) watchdog() {
	now := r.c.eng.Now()
	stale := now-r.lastBeacon > beaconLossIntervals*BeaconInterval
	if !r.scanning && (r.c.IsAssociated() && stale || !r.c.IsAssociated()) {
		r.startScan()
	}
	r.c.eng.After(BeaconInterval, r.watchdog)
}

// periodicScan is the background sweep real supplicants run on a timer.
func (r *roamState) periodicScan() {
	r.startScan()
	r.c.eng.After(r.cfg.ScanInterval, r.periodicScan)
}

// startScan begins a channel sweep unless one is running, the cooldown has
// not elapsed, or an association handshake is actively retrying (retuning
// mid-handshake would strand it on the wrong channel).
func (r *roamState) startScan() {
	now := r.c.eng.Now()
	if r.scanning || now-r.lastScan < r.cfg.ScanCooldown || r.c.handshakeActive() {
		return
	}
	r.scanning = true
	r.lastScan = now
	r.Scans++
	r.homeCh = r.c.Channel()
	r.sightings = make(map[dot80211.MAC]apSighting)
	r.scanEpoch++
	r.scanStep(0, r.scanEpoch)
}

// scanStep tunes to sweep channel i, probes it, and schedules the next
// step; after the last dwell it decides.
func (r *roamState) scanStep(i, epoch int) {
	if epoch != r.scanEpoch {
		return
	}
	if i >= len(scanChannels) {
		r.decide()
		return
	}
	r.c.Retune(scanChannels[i])
	r.c.Scan()
	r.c.eng.After(r.cfg.ScanDwell, func() { r.scanStep(i+1, epoch) })
}

// decide picks the sweep's winner and either roams or retunes home.
func (r *roamState) decide() {
	r.scanning = false
	var best dot80211.MAC
	bestS := apSighting{rssiDBm: -1e9}
	for mac, s := range r.sightings {
		if s.rssiDBm > bestS.rssiDBm ||
			// Deterministic tiebreak: sightings is a map.
			s.rssiDBm == bestS.rssiDBm && lessMAC(mac, best) {
			best, bestS = mac, s
		}
	}
	// A fresh sighting of the serving AP is better truth than the EWMA.
	cur := r.curRSSI
	seenCur := false
	if s, ok := r.sightings[r.c.ap]; ok {
		seenCur = true
		cur = s.rssiDBm
		r.curRSSI, r.haveRSSI = s.rssiDBm, true
	}
	// The serving link is dead when its beacons stopped arriving AND the
	// sweep itself could not hear it; a stale EWMA from the good times
	// must not veto the escape via hysteresis.
	dead := r.scanningStale() && !seenCur
	switch {
	case best.IsZero():
		// Heard nobody: go home and hope the watchdog finds better luck.
		r.c.Retune(r.homeCh)
	case best == r.c.ap:
		r.c.Retune(r.homeCh)
		if !r.c.IsAssociated() {
			// The serving AP is still the best and we lost the
			// association (handshake gave up, or we were never joined):
			// restart it.
			r.c.Associate(best)
		}
	case r.c.IsAssociated() && !dead && r.haveRSSI && bestS.rssiDBm < cur+r.cfg.HysteresisDB:
		// Candidate not enough better than the link we have: stay.
		r.c.Retune(r.homeCh)
	case (!r.c.IsAssociated() || dead) && bestS.rssiDBm < minJoinRSSIdBm:
		r.c.Retune(r.homeCh)
	default:
		r.roamTo(best, bestS)
	}
}

// scanningStale reports whether the serving AP has been silent long enough
// that its EWMA should not be refreshed from a single sweep sighting.
func (r *roamState) scanningStale() bool {
	return r.c.eng.Now()-r.lastBeacon > beaconLossIntervals*BeaconInterval
}

// roamTo commits the handoff: ground-truth hook, disassociation on the old
// channel, then retune + ARF reset + association handshake on the new one.
func (r *roamState) roamTo(bssid dot80211.MAC, s apSighting) {
	c := r.c
	old := c.ap
	r.Handoffs++
	r.scanEpoch++ // cancel any in-flight sweep steps
	if c.OnRoam != nil {
		c.OnRoam(old, bssid)
	}
	join := func() {
		c.Retune(s.channel)
		c.ResetRates()
		c.apProt = false
		r.curRSSI, r.haveRSSI = s.rssiDBm, true
		r.lastBeacon = c.eng.Now()
		c.Associate(bssid)
	}
	if c.stage == asAssociated && !old.IsZero() && old != bssid {
		// Say goodbye where the old AP can hear it. onDone fires on
		// delivery, retry exhaustion, or queue overflow — join regardless.
		c.Retune(r.homeCh)
		dis := dot80211.NewMgmt(dot80211.SubtypeDisassoc, old, c.cfg.MAC, old, 0, nil)
		c.SendMgmt(dis, func(bool) { join() })
	} else {
		join()
	}
}

// noteAssociated resets link tracking when an association completes, so a
// just-finished handoff doesn't immediately re-trigger on stale state.
func (r *roamState) noteAssociated() {
	r.lastBeacon = r.c.eng.Now()
}

// lessMAC is a total order on MAC addresses for deterministic tiebreaks.
func lessMAC(a, b dot80211.MAC) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
