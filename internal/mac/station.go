// Package mac implements the 802.11 DCF media-access layer for the
// simulated substrate: CSMA/CA with DIFS/SIFS timing, binary-exponential
// backoff, link-layer retransmission with the retry bit, sequence numbers,
// Duration/NAV virtual carrier sense, immediate ACKs, beacons, the
// probe/auth/associate handshake and 802.11g CTS-to-self protection mode.
//
// The goal is not a standards-complete MAC but one that emits every protocol
// artifact Jigsaw's reconstruction layer consumes: retries with (usually)
// the retry bit set, monotonically increasing sequence numbers, Duration
// fields that predict ACK timing, CTS-to-self preceding protected OFDM
// exchanges, and ACKs that may or may not be observed by any given monitor.
package mac

import (
	"fmt"

	"repro/internal/building"
	"repro/internal/dot80211"
	"repro/internal/radio"
	"repro/internal/sim"
)

// PHYMode selects a station's radio capability.
type PHYMode uint8

// PHY modes.
const (
	PHY80211b PHYMode = iota // CCK only, cannot sense/decode OFDM
	PHY80211g                // ERP-OFDM + CCK
)

// String names the mode.
func (m PHYMode) String() string {
	if m == PHY80211b {
		return "11b"
	}
	return "11g"
}

// Retry limits per the standard: frames longer than the RTS threshold use
// the long retry limit (4 attempts), short frames the short limit (7).
// The distinction matters to the paper's §7.4 analysis: a bulky TCP data
// segment exhausts its MAC retries far sooner than the small frames
// carrying TCP acknowledgments, which is part of why the wireless hop
// dominates TCP-visible loss.
const (
	shortRetryLimit   = 7
	longRetryLimit    = 4
	retryLenThreshold = 256
)

// retryLimitFor returns the attempt budget for a frame of wire length n.
func retryLimitFor(n int) int {
	if n > retryLenThreshold {
		return longRetryLimit
	}
	return shortRetryLimit
}

// ackTimeoutSlackUS pads the ACK wait beyond SIFS + ACK airtime.
const ackTimeoutSlackUS = 40

// maxQueue bounds the transmit queue; overflow drops from the tail like a
// real driver under load.
const maxQueue = 200

// outFrame is one queued MSDU with its transmit policy.
type outFrame struct {
	frame    dot80211.Frame
	rate     dot80211.Rate
	attempts int
	protect  bool // precede with CTS-to-self
	noRetry  bool // broadcast/multicast: fire and forget
	onDone   func(delivered bool)
}

// Config parameterizes a Station.
type Config struct {
	ID       radio.NodeID
	MAC      dot80211.MAC
	Channel  dot80211.Channel
	PHY      PHYMode
	PowerDBm float64
	Preamble dot80211.Preamble

	// BrokenRetryBit reproduces the Intel quirk of footnote 5: retransmit
	// without setting the retry bit.
	BrokenRetryBit bool

	// RTSThresholdBytes enables the RTS/CTS handshake for unicast data
	// frames whose wire length exceeds it (0 disables, matching the
	// production network, where only CTS-to-self protection was observed).
	RTSThresholdBytes int
}

// Station is a DCF transmitter/receiver attached to the medium. AP and
// Client embed it.
type Station struct {
	cfg Config
	eng *sim.Engine
	med *radio.Medium

	// Deliver is invoked for each successfully received unicast DATA frame
	// addressed to this station (after duplicate filtering) and for each
	// broadcast DATA frame.
	Deliver func(f dot80211.Frame)
	// OnMgmt is invoked for received management frames addressed to us or
	// broadcast.
	OnMgmt func(f dot80211.Frame)
	// SnoopMgmt, when set, observes the same management frames as OnMgmt
	// along with their received signal strength — the input the roaming
	// state machine's beacon-RSSI tracker needs.
	SnoopMgmt func(f dot80211.Frame, rssiDBm float64)

	seq     uint16
	queue   []outFrame
	cur     *outFrame
	cw      int // current contention window
	backoff int // remaining backoff slots

	state     stationState
	navUntil  sim.Time
	difsTimer sim.Handle
	boTimer   sim.Handle
	boStart   sim.Time
	ackTimer  sim.Handle
	navTimer  sim.Handle

	// duplicate filter: last seq seen per transmitter
	lastRxSeq map[dot80211.MAC]uint16

	// rate adaptation (ARF-like) per destination
	rates map[dot80211.MAC]*arfState

	// pendingSend continues an RTS/CTS exchange once the CTS arrives.
	pendingSend func()

	// Stats for tests and the trace summary.
	Stats Stats
}

// Stats counts MAC-level outcomes at this station.
type Stats struct {
	TxData     int // DATA transmission attempts put on air
	TxMgmt     int
	TxCTSSelf  int
	TxRTS      int
	TxCTSResp  int
	TxAcks     int
	Retries    int
	Delivered  int // frame exchanges completed (ACK received)
	Failed     int // frame exchanges abandoned at retry limit
	RxData     int
	RxDup      int
	QueueDrops int
}

type stationState uint8

const (
	stIdle stationState = iota
	stContend
	stTx
	stWaitAck
	stWaitCTS
)

// NewStation creates a station and registers it on the medium.
func NewStation(eng *sim.Engine, med *radio.Medium, pos Position, cfg Config) *Station {
	if cfg.PowerDBm == 0 {
		cfg.PowerDBm = radio.ClientTxPowerDBm
	}
	s := &Station{
		cfg: cfg, eng: eng, med: med, cw: dot80211.CWMin,
		lastRxSeq: make(map[dot80211.MAC]uint16),
		rates:     make(map[dot80211.MAC]*arfState),
	}
	med.Register(cfg.ID, pos, cfg.Channel, s, cfg.PHY == PHY80211b)
	return s
}

// Position aliases the building point to keep the mac API readable.
type Position = building.Point

// MAC returns the station's address.
func (s *Station) MAC() dot80211.MAC { return s.cfg.MAC }

// ID returns the station's medium node id.
func (s *Station) ID() radio.NodeID { return s.cfg.ID }

// Channel returns the tuned channel.
func (s *Station) Channel() dot80211.Channel { return s.cfg.Channel }

// Retune switches the station's radio to another channel (scanning,
// roaming). Frames already queued transmit on the new channel, like a real
// driver whose hardware is retuned under it.
func (s *Station) Retune(ch dot80211.Channel) {
	s.cfg.Channel = ch
	s.med.SetChannel(s.cfg.ID, ch)
}

// PHY returns the station's PHY mode.
func (s *Station) PHY() PHYMode { return s.cfg.PHY }

// nextSeq returns the next 12-bit sequence number.
func (s *Station) nextSeq() uint16 {
	v := s.seq
	s.seq = (s.seq + 1) & 0x0fff
	return v
}

// SendData queues a unicast or broadcast DATA frame. rate 0 selects rate
// adaptation. protect requests CTS-to-self (protection mode). onDone, if
// non-nil, reports delivery (true) or abandonment (false); broadcast frames
// report true when transmitted.
func (s *Station) SendData(ra, bssid dot80211.MAC, body []byte, rate dot80211.Rate, protect bool, onDone func(bool)) {
	f := dot80211.NewData(ra, s.cfg.MAC, bssid, s.nextSeq(), body)
	s.enqueue(outFrame{frame: f, rate: rate, protect: protect && rate.IsOFDM() || protect && rate == 0,
		noRetry: ra.IsMulticast(), onDone: onDone})
}

// SendMgmt queues a management frame (beacons are broadcast/no-retry;
// probe/auth/assoc are unicast with ARQ). Management frames go at a basic
// rate.
func (s *Station) SendMgmt(f dot80211.Frame, onDone func(bool)) {
	f.Seq = s.nextSeq()
	rate := dot80211.Rate1Mbps
	s.enqueue(outFrame{frame: f, rate: rate, noRetry: f.Addr1.IsMulticast(), onDone: onDone})
}

func (s *Station) enqueue(of outFrame) {
	if len(s.queue) >= maxQueue {
		s.Stats.QueueDrops++
		if of.onDone != nil {
			of.onDone(false)
		}
		return
	}
	s.queue = append(s.queue, of)
	s.kick()
}

// kick starts channel access if we are idle with work pending.
func (s *Station) kick() {
	if s.state != stIdle || (s.cur == nil && len(s.queue) == 0) {
		return
	}
	if s.cur == nil {
		s.cur = &s.queue[0]
		s.queue = s.queue[1:]
		s.backoff = s.eng.Rand().Intn(s.cw + 1)
	}
	s.state = stContend
	s.tryAccess()
}

// mediumFree reports physical-and-virtual idle.
func (s *Station) mediumFree() bool {
	return !s.med.Busy(s.cfg.ID) && s.eng.Now() >= s.navUntil
}

// tryAccess begins (or resumes) the DIFS + backoff procedure.
func (s *Station) tryAccess() {
	if s.state != stContend {
		return
	}
	s.difsTimer.Cancel()
	s.boTimer.Cancel()
	if !s.mediumFree() {
		// NAV may expire with no medium transition; wake ourselves then.
		if now := s.eng.Now(); s.navUntil > now && !s.med.Busy(s.cfg.ID) {
			s.navTimer.Cancel()
			s.navTimer = s.eng.At(s.navUntil, s.tryAccess)
		}
		return
	}
	s.difsTimer = s.eng.After(sim.US(dot80211.DIFS), func() {
		if s.state != stContend || !s.mediumFree() {
			return
		}
		if s.backoff == 0 {
			s.transmitCurrent()
			return
		}
		s.boStart = s.eng.Now()
		s.boTimer = s.eng.After(sim.US(int64(s.backoff)*dot80211.SlotTime), func() {
			s.backoff = 0
			if s.state == stContend && s.mediumFree() {
				s.transmitCurrent()
			}
		})
	})
}

// pauseBackoff freezes the countdown when the medium turns busy.
func (s *Station) pauseBackoff() {
	s.difsTimer.Cancel()
	if s.boStart != 0 {
		consumed := int((s.eng.Now() - s.boStart) / sim.US(dot80211.SlotTime))
		if consumed > s.backoff {
			consumed = s.backoff
		}
		s.backoff -= consumed
		s.boStart = 0
	}
	s.boTimer.Cancel()
}

// transmitCurrent puts the current frame (optionally preceded by
// CTS-to-self) on the air.
func (s *Station) transmitCurrent() {
	of := s.cur
	if of == nil {
		s.state = stIdle
		return
	}
	s.state = stTx
	rate := of.rate
	if rate == 0 {
		rate = s.rateFor(of.frame.Addr1)
		if of.attempts > 0 {
			// The coded rate of a frame never increases in response to a
			// loss (§5.1 heuristic): retries step down.
			rate = s.stepDown(rate, of.attempts)
		}
	}
	of.frame.Flags &^= dot80211.FlagRetry
	if of.attempts > 0 && !s.cfg.BrokenRetryBit {
		of.frame.Flags |= dot80211.FlagRetry
	}
	if of.attempts > 0 {
		s.Stats.Retries++
	}
	of.attempts++

	wantAck := !of.noRetry
	dataLen := of.frame.WireLen()
	if wantAck {
		of.frame.Duration = dot80211.NAVForDataExchange(rate, s.cfg.Preamble)
	} else {
		of.frame.Duration = 0
	}

	sendData := func() {
		if of.frame.IsData() {
			s.Stats.TxData++
		} else {
			s.Stats.TxMgmt++
		}
		wire := of.frame.Encode()
		air := sim.US(int64(dot80211.AirtimeUS(len(wire), rate, s.cfg.Preamble)))
		s.med.TransmitFrom(s.cfg.ID, s.cfg.PowerDBm, s.cfg.Channel, rate, s.cfg.Preamble, wire)
		if wantAck {
			s.state = stWaitAck
			timeout := air + sim.US(dot80211.SIFS+int64(dot80211.AckAirtimeUS(rate, s.cfg.Preamble))+ackTimeoutSlackUS)
			s.ackTimer = s.eng.After(timeout, s.ackTimedOut)
		} else {
			s.eng.After(air, func() { s.completeCurrent(true) })
		}
	}

	switch {
	case of.protect && rate.IsOFDM():
		// CTS-to-self at 2 Mbps, long preamble (the APs' conservative
		// setting from footnote 7), then SIFS, then the data frame.
		cts := dot80211.NewCTSToSelf(s.cfg.MAC, dot80211.NAVForCTSToSelf(dataLen, rate, s.cfg.Preamble))
		ctsWire := cts.Encode()
		s.Stats.TxCTSSelf++
		s.med.TransmitFrom(s.cfg.ID, s.cfg.PowerDBm, s.cfg.Channel, dot80211.Rate2Mbps, dot80211.LongPreamble, ctsWire)
		ctsAir := sim.US(int64(dot80211.CTSAirtimeUS(dot80211.Rate2Mbps, dot80211.LongPreamble)))
		s.eng.After(ctsAir+sim.US(dot80211.SIFS), sendData)
	case s.cfg.RTSThresholdBytes > 0 && wantAck && dataLen > s.cfg.RTSThresholdBytes:
		// RTS/CTS: reserve the channel past any hidden terminals. The RTS
		// Duration covers CTS + DATA + ACK (plus the SIFS between each);
		// the responder's CTS covers the remainder.
		ctrlRate := dot80211.Rate2Mbps
		ctsUS := dot80211.CTSAirtimeUS(ctrlRate, s.cfg.Preamble)
		dataUS := dot80211.AirtimeUS(dataLen, rate, s.cfg.Preamble)
		ackUS := dot80211.AckAirtimeUS(rate, s.cfg.Preamble)
		rts := dot80211.NewRTS(of.frame.Addr1, s.cfg.MAC,
			uint16(3*dot80211.SIFS+ctsUS+dataUS+ackUS))
		s.Stats.TxRTS++
		wire := rts.Encode()
		s.med.TransmitFrom(s.cfg.ID, s.cfg.PowerDBm, s.cfg.Channel, ctrlRate, s.cfg.Preamble, wire)
		rtsAir := sim.US(int64(dot80211.AirtimeUS(len(wire), ctrlRate, s.cfg.Preamble)))
		// Await the CTS: if it does not arrive in time, the attempt fails
		// like a missing ACK (retry with backoff).
		s.state = stWaitCTS
		s.pendingSend = sendData
		s.ackTimer = s.eng.After(rtsAir+sim.US(dot80211.SIFS+int64(ctsUS)+ackTimeoutSlackUS), s.ackTimedOut)
	default:
		sendData()
	}
}

// ackTimedOut handles a missing ACK: double the window and retry, or give
// up at the retry limit.
func (s *Station) ackTimedOut() {
	if (s.state != stWaitAck && s.state != stWaitCTS) || s.cur == nil {
		return
	}
	s.pendingSend = nil
	of := s.cur
	s.rateFail(of.frame.Addr1)
	if of.attempts >= retryLimitFor(of.frame.WireLen()) {
		s.completeCurrent(false)
		return
	}
	s.cw = min(2*s.cw+1, dot80211.CWMax)
	s.backoff = s.eng.Rand().Intn(s.cw + 1)
	s.state = stContend
	s.tryAccess()
}

// completeCurrent finishes the current frame exchange and moves on.
func (s *Station) completeCurrent(ok bool) {
	of := s.cur
	if of == nil {
		return
	}
	s.ackTimer.Cancel()
	s.cur = nil
	s.cw = dot80211.CWMin
	if ok {
		if !of.noRetry {
			s.Stats.Delivered++
		}
	} else {
		s.Stats.Failed++
	}
	if of.onDone != nil {
		of.onDone(ok)
	}
	s.state = stIdle
	s.kick()
}

// OnReceive implements radio.Listener: decode, ACK, filter duplicates,
// deliver upward, and track NAV.
func (s *Station) OnReceive(info radio.RxInfo) {
	if info.Outcome != radio.RxOK {
		return
	}
	f, err := dot80211.Decode(info.Bytes)
	if err != nil {
		return
	}

	// NAV: any valid frame not addressed to us reserves the medium.
	if f.Addr1 != s.cfg.MAC && f.Duration > 0 && f.Duration < 0x8000 {
		until := info.End + sim.US(int64(f.Duration))
		if until > s.navUntil {
			s.navUntil = until
		}
	}

	switch {
	case f.IsACK():
		if f.Addr1 == s.cfg.MAC && s.state == stWaitAck && s.cur != nil {
			s.rateOK(s.cur.frame.Addr1)
			s.completeCurrent(true)
		}
	case f.Subtype == dot80211.SubtypeRTS && f.Type == dot80211.TypeControl:
		if f.Addr1 == s.cfg.MAC {
			// Respond with CTS after SIFS; its Duration is the RTS's minus
			// the CTS itself and one SIFS.
			ctrlRate := dot80211.Rate2Mbps
			ctsUS := dot80211.CTSAirtimeUS(ctrlRate, s.cfg.Preamble)
			dur := int(f.Duration) - dot80211.SIFS - ctsUS
			if dur < 0 {
				dur = 0
			}
			cts := dot80211.NewCTSToSelf(f.Addr2, uint16(dur))
			wire := cts.Encode()
			s.eng.After(sim.US(dot80211.SIFS), func() {
				s.Stats.TxCTSResp++
				s.med.TransmitFrom(s.cfg.ID, s.cfg.PowerDBm, s.cfg.Channel, ctrlRate, s.cfg.Preamble, wire)
			})
		}
	case f.IsCTS():
		if f.Addr1 == s.cfg.MAC && s.state == stWaitCTS && s.pendingSend != nil {
			// Our RTS was answered: transmit the data after SIFS.
			s.ackTimer.Cancel()
			send := s.pendingSend
			s.pendingSend = nil
			s.eng.After(sim.US(dot80211.SIFS), send)
		}
	case f.IsData():
		if f.Addr1 == s.cfg.MAC {
			s.sendAck(f.Addr2, info.Rate)
			if last, ok := s.lastRxSeq[f.Addr2]; ok && last == f.Seq && f.Retry() {
				s.Stats.RxDup++
				return
			}
			s.lastRxSeq[f.Addr2] = f.Seq
			s.Stats.RxData++
			if s.Deliver != nil {
				s.Deliver(f)
			}
		} else if f.Addr1.IsMulticast() {
			s.Stats.RxData++
			if s.Deliver != nil {
				s.Deliver(f)
			}
		}
	case f.Type == dot80211.TypeManagement:
		if f.Addr1 == s.cfg.MAC || f.Addr1.IsMulticast() {
			if s.SnoopMgmt != nil {
				s.SnoopMgmt(f, info.RSSIdBm)
			}
			if f.Addr1 == s.cfg.MAC {
				s.sendAck(f.Addr2, info.Rate)
				if last, ok := s.lastRxSeq[f.Addr2]; ok && last == f.Seq && f.Retry() {
					s.Stats.RxDup++
					return
				}
				s.lastRxSeq[f.Addr2] = f.Seq
			}
			if s.OnMgmt != nil {
				s.OnMgmt(f)
			}
		}
	}
}

// sendAck transmits an immediate ACK after SIFS; ACKs ignore carrier sense
// per the standard (the SIFS priority guarantees the channel).
func (s *Station) sendAck(ra dot80211.MAC, dataRate dot80211.Rate) {
	ack := dot80211.NewAck(ra)
	wire := ack.Encode()
	ackRate := dot80211.Rate2Mbps
	if dataRate.IsOFDM() {
		ackRate = dot80211.Rate24Mbps
	} else if dataRate == dot80211.Rate1Mbps {
		ackRate = dot80211.Rate1Mbps
	}
	s.eng.After(sim.US(dot80211.SIFS), func() {
		s.Stats.TxAcks++
		s.med.TransmitFrom(s.cfg.ID, s.cfg.PowerDBm, s.cfg.Channel, ackRate, s.cfg.Preamble, wire)
	})
}

// OnMediumBusy implements radio.Listener.
func (s *Station) OnMediumBusy(src radio.NodeID, until sim.Time) {
	if s.state == stContend {
		s.pauseBackoff()
	}
}

// OnMediumIdle implements radio.Listener.
func (s *Station) OnMediumIdle() {
	if s.state == stContend {
		s.tryAccess()
	}
}

// String describes the station.
func (s *Station) String() string {
	return fmt.Sprintf("sta{%v %v ch%d}", s.cfg.MAC, s.cfg.PHY, s.cfg.Channel)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
