package mac

import (
	"repro/internal/dot80211"
	"repro/internal/radio"
	"repro/internal/sim"
)

// assocStage tracks the client association handshake.
type assocStage uint8

const (
	asIdle assocStage = iota
	asProbing
	asAuthenticating
	asAssociating
	asAssociated
)

// Client is a wireless station that associates with an AP and exchanges
// data through it. Its PHY mode determines whether it is one of the legacy
// 802.11b stations that trigger protection mode.
type Client struct {
	*Station

	// OnAssociated fires when the association handshake completes.
	OnAssociated func()
	// FromWireless is invoked for each downlink data frame received.
	FromWireless func(src dot80211.MAC, payload []byte)
	// OnRoam fires when the roaming state machine commits to a handoff,
	// before the disassociation/reassociation sequence goes on air. The
	// scenario layer uses it to record per-handoff ground truth.
	OnRoam func(from, to dot80211.MAC)

	ap         dot80211.MAC
	apProt     bool // AP currently advertises protection (from beacons)
	stage      assocStage
	retryCnt   int
	assocStart sim.Time // when the current handshake began

	roam *roamState // nil until EnableRoaming
}

// NewClient creates a client station.
func NewClient(eng *sim.Engine, med *radio.Medium, pos Position, cfg Config) *Client {
	c := &Client{Station: NewStation(eng, med, pos, cfg)}
	c.Station.OnMgmt = c.handleMgmt
	c.Station.Deliver = c.handleData
	return c
}

// phyByte encodes the client's PHY for probe/assoc bodies.
func (c *Client) phyByte() byte {
	if c.cfg.PHY == PHY80211b {
		return 'b'
	}
	return 'g'
}

// Associate begins the probe → auth → assoc handshake toward the AP with
// the given BSSID. The handshake restarts (with fresh probes) if a step
// times out, like a real supplicant.
func (c *Client) Associate(bssid dot80211.MAC) {
	c.ap = bssid
	c.stage = asProbing
	c.retryCnt = 0
	c.assocStart = c.eng.Now()
	c.sendProbe()
}

// Reassociate tears down the current association (sending a disassociation
// frame to the old AP) and joins a new one — the roaming behaviour of the
// §6 oracle laptop moving between building locations. ARF state is dropped:
// rate history toward the old AP says nothing about the new link.
func (c *Client) Reassociate(bssid dot80211.MAC) {
	if c.stage == asAssociated && c.ap != bssid && !c.ap.IsZero() {
		dis := dot80211.NewMgmt(dot80211.SubtypeDisassoc, c.ap, c.cfg.MAC, c.ap, 0, nil)
		c.SendMgmt(dis, nil)
	}
	c.ResetRates()
	c.apProt = false
	c.Associate(bssid)
}

func (c *Client) sendProbe() {
	if c.stage != asProbing {
		return
	}
	f := dot80211.NewProbeReq(c.cfg.MAC, 0, "")
	f.Body = append([]byte{c.phyByte()}, f.Body...)
	c.SendMgmt(f, nil)
	c.retryCnt++
	if c.retryCnt < 20 {
		c.eng.After(200*sim.Millisecond, func() {
			if c.stage == asProbing {
				c.sendProbe()
			}
		})
	}
}

func (c *Client) handleMgmt(f dot80211.Frame) {
	switch f.Subtype {
	case dot80211.SubtypeBeacon:
		if f.Addr2 == c.ap && len(f.Body) >= 9 {
			c.apProt = f.Body[8]&beaconFlagProtection != 0
		}
	case dot80211.SubtypeProbeResp:
		if c.stage == asProbing && f.Addr2 == c.ap {
			c.stage = asAuthenticating
			auth := dot80211.NewMgmt(dot80211.SubtypeAuth, c.ap, c.cfg.MAC, c.ap, 0, []byte{c.phyByte()})
			c.SendMgmt(auth, nil)
		}
	case dot80211.SubtypeAuth:
		if c.stage == asAuthenticating && f.Addr2 == c.ap {
			c.stage = asAssociating
			req := dot80211.NewMgmt(dot80211.SubtypeAssocReq, c.ap, c.cfg.MAC, c.ap, 0, []byte{c.phyByte()})
			c.SendMgmt(req, nil)
		}
	case dot80211.SubtypeAssocResp:
		if c.stage == asAssociating && f.Addr2 == c.ap {
			c.stage = asAssociated
			if c.roam != nil {
				c.roam.noteAssociated()
			}
			if c.OnAssociated != nil {
				c.OnAssociated()
			}
		}
	}
}

func (c *Client) handleData(f dot80211.Frame) {
	if c.FromWireless != nil {
		c.FromWireless(f.Addr3, f.Body)
	}
}

// IsAssociated reports handshake completion.
func (c *Client) IsAssociated() bool { return c.stage == asAssociated }

// handshakeActive reports whether an association handshake is mid-flight
// and still plausibly progressing. The time bound matters to the roaming
// machinery: a handshake whose auth/assoc response was lost would otherwise
// block scans forever.
func (c *Client) handshakeActive() bool {
	return c.stage > asIdle && c.stage < asAssociated &&
		c.eng.Now()-c.assocStart < 3*sim.Second
}

// BSSID returns the AP the client is (being) associated with.
func (c *Client) BSSID() dot80211.MAC { return c.ap }

// Scan issues a background probe request (clients periodically scan even
// while associated; probe requests let APs sense 802.11b stations in range,
// which matters for the §7.3 protection-mode analysis).
func (c *Client) Scan() {
	f := dot80211.NewProbeReq(c.cfg.MAC, 0, "")
	f.Body = append([]byte{c.phyByte()}, f.Body...)
	c.SendMgmt(f, nil)
}

// SendLocalBroadcast transmits a broadcast DATA frame (application-level
// broadcast such as the MS-Office license announcement of footnote 6).
// Broadcasts are unacknowledged and go at the lowest rate.
func (c *Client) SendLocalBroadcast(payload []byte) {
	c.SendData(dot80211.Broadcast, c.ap, payload, dot80211.Rate1Mbps, false, nil)
}

// SendUplink queues a data frame through the AP toward final destination
// dst (a wired host or another wireless client). Protection mode applies to
// OFDM transmissions when the AP advertises it.
func (c *Client) SendUplink(dst dot80211.MAC, payload []byte, onDone func(bool)) {
	if c.stage != asAssociated {
		if onDone != nil {
			onDone(false)
		}
		return
	}
	f := dot80211.NewData(c.ap, c.cfg.MAC, dst, c.nextSeq(), payload)
	f.Flags |= dot80211.FlagToDS
	prot := c.apProt && c.cfg.PHY == PHY80211g
	c.enqueue(outFrame{frame: f, rate: 0, protect: prot, onDone: onDone})
}
