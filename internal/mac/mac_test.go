package mac

import (
	"testing"

	"repro/internal/building"
	"repro/internal/dot80211"
	"repro/internal/radio"
	"repro/internal/sim"
)

func apMAC(i int) dot80211.MAC  { return dot80211.MAC{0xaa, 0, 0, 0, 0, byte(i)} }
func cliMAC(i int) dot80211.MAC { return dot80211.MAC{0xc2, 0, 0, 0, 0, byte(i)} }

type world struct {
	eng *sim.Engine
	med *radio.Medium
}

func newWorld(seed int64) *world {
	eng := sim.NewEngine(seed)
	med := radio.NewMedium(eng, radio.NewPropagation(seed))
	return &world{eng, med}
}

func (w *world) ap(id radio.NodeID, x float64) *AP {
	return NewAP(w.eng, w.med, building.Point{X: x, Y: 15, Z: 2.5},
		Config{ID: id, MAC: apMAC(int(id)), Channel: 1}, "test-net")
}

func (w *world) client(id radio.NodeID, x float64, phy PHYMode) *Client {
	return NewClient(w.eng, w.med, building.Point{X: x, Y: 14, Z: 1},
		Config{ID: id, MAC: cliMAC(int(id)), Channel: 1, PHY: phy})
}

func TestAssociationHandshake(t *testing.T) {
	w := newWorld(1)
	ap := w.ap(1, 10)
	cl := w.client(2, 12, PHY80211g)
	done := false
	cl.OnAssociated = func() { done = true }
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	w.eng.Run(5 * sim.Second)
	if !done || !cl.IsAssociated() {
		t.Fatal("association did not complete")
	}
	if phy, ok := ap.Associated(cl.MAC()); !ok || phy != PHY80211g {
		t.Errorf("AP association record wrong: %v %v", phy, ok)
	}
	if ap.ProbeResponses == 0 {
		t.Error("no probe responses sent")
	}
}

func TestUplinkDelivery(t *testing.T) {
	w := newWorld(2)
	ap := w.ap(1, 10)
	cl := w.client(2, 12, PHY80211g)
	var gotSrc, gotDst dot80211.MAC
	var gotPayload []byte
	ap.ToWired = func(src, dst dot80211.MAC, p []byte) { gotSrc, gotDst, gotPayload = src, dst, p }
	dst := dot80211.MAC{0xee, 0, 0, 0, 0, 1}
	delivered := false
	cl.OnAssociated = func() {
		cl.SendUplink(dst, []byte("tcp-segment"), func(ok bool) { delivered = ok })
	}
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	w.eng.Run(5 * sim.Second)
	if !delivered {
		t.Fatal("uplink not delivered")
	}
	if gotSrc != cl.MAC() || gotDst != dst || string(gotPayload) != "tcp-segment" {
		t.Errorf("bridged frame wrong: src=%v dst=%v payload=%q", gotSrc, gotDst, gotPayload)
	}
	// Delivered counts every ACKed exchange: auth, assoc-req and the data
	// frame.
	if cl.Stats.Delivered != 3 {
		t.Errorf("client delivered count = %d, want 3 (auth+assoc+data)", cl.Stats.Delivered)
	}
}

func TestDownlinkDelivery(t *testing.T) {
	w := newWorld(3)
	ap := w.ap(1, 10)
	cl := w.client(2, 12, PHY80211g)
	var got []byte
	cl.FromWireless = func(src dot80211.MAC, p []byte) { got = p }
	src := dot80211.MAC{0xee, 0, 0, 0, 0, 9}
	cl.OnAssociated = func() {
		ap.SendToClient(cl.MAC(), src, []byte("response"), nil)
	}
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	w.eng.Run(5 * sim.Second)
	if string(got) != "response" {
		t.Fatalf("downlink payload = %q", got)
	}
}

func TestSendToUnassociatedFails(t *testing.T) {
	w := newWorld(3)
	ap := w.ap(1, 10)
	okCalled, okVal := false, true
	if ap.SendToClient(cliMAC(9), dot80211.MAC{}, nil, func(ok bool) { okCalled, okVal = true, ok }) {
		t.Error("SendToClient to unknown client returned true")
	}
	if !okCalled || okVal {
		t.Error("onDone(false) expected")
	}
}

func TestBeaconsEmitted(t *testing.T) {
	w := newWorld(4)
	ap := w.ap(1, 10)
	beacons := 0
	mon := &beaconCounter{n: &beacons}
	w.med.Register(99, building.Point{X: 11, Y: 15, Z: 2.5}, 1, mon, false)
	w.eng.Run(3 * sim.Second)
	// ~29 beacons in 3 s at 102.4 ms.
	if beacons < 20 || beacons > 35 {
		t.Errorf("observed %d beacons in 3s, want ≈29", beacons)
	}
	_ = ap
}

type beaconCounter struct {
	radio.NopListener
	n *int
}

func (b *beaconCounter) OnReceive(info radio.RxInfo) {
	if info.Outcome != radio.RxOK {
		return
	}
	if f, err := dot80211.Decode(info.Bytes); err == nil && f.IsBeacon() {
		*b.n++
	}
}

func TestRetryOnLostAck(t *testing.T) {
	// A client far from the AP: marginal link forces retries; check that
	// retry transmissions carry the retry bit and bump stats.
	w := newWorld(5)
	ap := w.ap(1, 10)
	// 45 m away, several walls: lossy but usable at low rate.
	cl := w.client(2, 55, PHY80211g)
	var sawRetryBit bool
	sniffer := &retrySniffer{saw: &sawRetryBit}
	w.med.Register(99, building.Point{X: 30, Y: 15, Z: 2.5}, 1, sniffer, false)
	cl.OnAssociated = func() {
		for i := 0; i < 40; i++ {
			cl.SendUplink(dot80211.MAC{0xee}, make([]byte, 800), nil)
		}
	}
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	w.eng.Run(20 * sim.Second)
	if cl.Stats.Retries == 0 {
		t.Skip("link happened to be clean for this seed; retry path untested here")
	}
	if !sawRetryBit {
		t.Error("retries occurred but no frame with retry bit observed")
	}
}

type retrySniffer struct {
	radio.NopListener
	saw *bool
}

func (r *retrySniffer) OnReceive(info radio.RxInfo) {
	if info.Outcome != radio.RxOK {
		return
	}
	if f, err := dot80211.Decode(info.Bytes); err == nil && f.IsData() && f.Retry() {
		*r.saw = true
	}
}

func TestProtectionModeCTSToSelf(t *testing.T) {
	w := newWorld(6)
	ap := w.ap(1, 10)
	ap.ProtectionTimeout = DefaultProtectionTimeout
	bCli := w.client(2, 12, PHY80211b)
	gCli := w.client(3, 14, PHY80211g)

	w.eng.After(0, func() { bCli.Associate(ap.MAC()) })
	w.eng.After(2*sim.Second, func() { gCli.Associate(ap.MAC()) })
	// After both associate, g client sends OFDM data: must be protected.
	w.eng.After(4*sim.Second, func() {
		if !ap.ProtectionOn() {
			t.Error("AP should be in protection mode with a b client associated")
		}
		for i := 0; i < 10; i++ {
			gCli.SendUplink(dot80211.MAC{0xee}, make([]byte, 1000), nil)
		}
	})
	w.eng.Run(10 * sim.Second)
	if gCli.Stats.TxCTSSelf == 0 {
		t.Error("g client sent OFDM data under protection but no CTS-to-self")
	}
}

func TestNoProtectionWithoutBClients(t *testing.T) {
	w := newWorld(7)
	ap := w.ap(1, 10)
	gCli := w.client(2, 12, PHY80211g)
	w.eng.After(0, func() { gCli.Associate(ap.MAC()) })
	w.eng.After(3*sim.Second, func() {
		if ap.ProtectionOn() {
			t.Error("protection on with no b clients ever seen")
		}
		for i := 0; i < 10; i++ {
			gCli.SendUplink(dot80211.MAC{0xee}, make([]byte, 1000), nil)
		}
	})
	w.eng.Run(10 * sim.Second)
	if gCli.Stats.TxCTSSelf != 0 {
		t.Errorf("unprotected network sent %d CTS-to-self", gCli.Stats.TxCTSSelf)
	}
}

func TestProtectionTimesOut(t *testing.T) {
	w := newWorld(8)
	ap := w.ap(1, 10)
	ap.ProtectionTimeout = PracticalProtectionTimeout
	bCli := w.client(2, 12, PHY80211b)
	w.eng.After(0, func() { bCli.Associate(ap.MAC()) })
	w.eng.Run(5 * sim.Second)
	if !ap.ProtectionOn() {
		t.Fatal("protection should be on right after b client activity")
	}
	// Idle past the timeout (b client sends nothing).
	w.eng.Run(5*sim.Second + PracticalProtectionTimeout + 10*sim.Second)
	if ap.ProtectionOn() {
		t.Error("protection should have timed out after 1 minute of b silence")
	}
}

func TestBroadcastDownlinkNoAck(t *testing.T) {
	w := newWorld(9)
	ap := w.ap(1, 10)
	cl := w.client(2, 12, PHY80211g)
	got := 0
	cl.FromWireless = func(src dot80211.MAC, p []byte) { got++ }
	cl.OnAssociated = func() {
		ap.SendBroadcastDownlink(dot80211.MAC{0xee}, []byte("arp who-has"))
	}
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	preAcks := 0
	w.eng.Run(5 * sim.Second)
	_ = preAcks
	if got != 1 {
		t.Errorf("broadcast received %d times, want 1", got)
	}
	if ap.Stats.Failed != 0 {
		t.Error("broadcast must not count as failed exchange")
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	w := newWorld(10)
	ap := w.ap(1, 10)
	cl := w.client(2, 12, PHY80211g)
	var seqs []uint16
	sn := &seqSniffer{src: cl.MAC(), seqs: &seqs}
	w.med.Register(99, building.Point{X: 11, Y: 14, Z: 2}, 1, sn, false)
	cl.OnAssociated = func() {
		for i := 0; i < 5; i++ {
			cl.SendUplink(dot80211.MAC{0xee}, []byte{byte(i)}, nil)
		}
	}
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	w.eng.Run(5 * sim.Second)
	if len(seqs) < 5 {
		t.Fatalf("sniffed %d data frames", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1] && seqs[i] != (seqs[i-1]+1)&0xfff {
			t.Errorf("sequence jump %d -> %d", seqs[i-1], seqs[i])
		}
	}
}

type seqSniffer struct {
	radio.NopListener
	src  dot80211.MAC
	seqs *[]uint16
}

func (s *seqSniffer) OnReceive(info radio.RxInfo) {
	if info.Outcome != radio.RxOK {
		return
	}
	if f, err := dot80211.Decode(info.Bytes); err == nil && f.IsData() && f.Addr2 == s.src {
		*s.seqs = append(*s.seqs, f.Seq)
	}
}

func TestDuplicateFiltering(t *testing.T) {
	// Force the AP's ACKs to be lost by placing the client where it can
	// hear nothing? Simpler: deliver the same frame twice via direct
	// Deliver calls is not possible; instead verify RxDup counting through
	// a lossy link where retries after ACK loss cause duplicates.
	w := newWorld(11)
	ap := w.ap(1, 10)
	cl := w.client(2, 50, PHY80211b)
	delivered := 0
	ap.ToWired = func(src, dst dot80211.MAC, p []byte) { delivered++ }
	sent := 0
	cl.OnAssociated = func() {
		for i := 0; i < 50; i++ {
			cl.SendUplink(dot80211.MAC{0xee}, make([]byte, 600), nil)
			sent++
		}
	}
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	w.eng.Run(30 * sim.Second)
	if delivered > sent {
		t.Errorf("duplicates leaked upward: delivered %d of %d sent", delivered, sent)
	}
}

func TestBRateLadderForBClients(t *testing.T) {
	w := newWorld(12)
	ap := w.ap(1, 10)
	cl := w.client(2, 11, PHY80211b)
	var rates []dot80211.Rate
	rs := &rateSniffer{src: cl.MAC(), rates: &rates}
	w.med.Register(99, building.Point{X: 11, Y: 14, Z: 2}, 1, rs, false)
	cl.OnAssociated = func() {
		for i := 0; i < 10; i++ {
			cl.SendUplink(dot80211.MAC{0xee}, make([]byte, 200), nil)
		}
	}
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	w.eng.Run(5 * sim.Second)
	if len(rates) == 0 {
		t.Fatal("no data frames sniffed")
	}
	for _, r := range rates {
		if r.IsOFDM() {
			t.Fatalf("b client transmitted OFDM rate %v", r)
		}
	}
}

type rateSniffer struct {
	radio.NopListener
	src   dot80211.MAC
	rates *[]dot80211.Rate
}

func (s *rateSniffer) OnReceive(info radio.RxInfo) {
	if info.Outcome != radio.RxOK {
		return
	}
	if f, err := dot80211.Decode(info.Bytes); err == nil && f.IsData() && f.Addr2 == s.src {
		*s.rates = append(*s.rates, info.Rate)
	}
}

func TestDataFramesCarryNAV(t *testing.T) {
	w := newWorld(13)
	ap := w.ap(1, 10)
	cl := w.client(2, 12, PHY80211g)
	var durs []uint16
	ds := &durSniffer{src: cl.MAC(), durs: &durs}
	w.med.Register(99, building.Point{X: 11, Y: 14, Z: 2}, 1, ds, false)
	cl.OnAssociated = func() { cl.SendUplink(dot80211.MAC{0xee}, make([]byte, 500), nil) }
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	w.eng.Run(5 * sim.Second)
	if len(durs) == 0 {
		t.Fatal("no data frames sniffed")
	}
	for _, d := range durs {
		if d == 0 {
			t.Error("unicast data frame with zero Duration")
		}
	}
}

type durSniffer struct {
	radio.NopListener
	src  dot80211.MAC
	durs *[]uint16
}

func (s *durSniffer) OnReceive(info radio.RxInfo) {
	if info.Outcome != radio.RxOK {
		return
	}
	if f, err := dot80211.Decode(info.Bytes); err == nil && f.IsData() && f.Addr2 == s.src {
		*s.durs = append(*s.durs, f.Duration)
	}
}

func TestTwoClientsShareChannel(t *testing.T) {
	w := newWorld(14)
	ap := w.ap(1, 10)
	c1 := w.client(2, 12, PHY80211g)
	c2 := w.client(3, 8, PHY80211g)
	deliveries := 0
	ap.ToWired = func(src, dst dot80211.MAC, p []byte) { deliveries++ }
	start := func(c *Client) func() {
		return func() {
			for i := 0; i < 20; i++ {
				c.SendUplink(dot80211.MAC{0xee}, make([]byte, 1000), nil)
			}
		}
	}
	c1.OnAssociated = start(c1)
	c2.OnAssociated = start(c2)
	w.eng.After(0, func() { c1.Associate(ap.MAC()) })
	w.eng.After(sim.Second, func() { c2.Associate(ap.MAC()) })
	w.eng.Run(30 * sim.Second)
	if deliveries < 38 {
		t.Errorf("only %d/40 frames delivered with two contending clients", deliveries)
	}
}

func TestStationStringer(t *testing.T) {
	w := newWorld(15)
	cl := w.client(2, 12, PHY80211b)
	if s := cl.String(); s == "" {
		t.Error("empty String")
	}
	if cl.PHY() != PHY80211b || cl.Channel() != 1 || cl.ID() != 2 {
		t.Error("accessors wrong")
	}
	if PHY80211b.String() != "11b" || PHY80211g.String() != "11g" {
		t.Error("PHY names")
	}
}

func TestRTSCTSHandshake(t *testing.T) {
	w := newWorld(20)
	ap := w.ap(1, 10)
	cl := NewClient(w.eng, w.med, building.Point{X: 12, Y: 14, Z: 1},
		Config{ID: 2, MAC: cliMAC(2), Channel: 1, PHY: PHY80211g, RTSThresholdBytes: 500})
	delivered := 0
	ap.ToWired = func(src, dst dot80211.MAC, p []byte) { delivered++ }
	cl.OnAssociated = func() {
		for i := 0; i < 5; i++ {
			cl.SendUplink(dot80211.MAC{0xee}, make([]byte, 1200), nil) // above threshold
		}
		cl.SendUplink(dot80211.MAC{0xee}, make([]byte, 100), nil) // below threshold
	}
	w.eng.After(0, func() { cl.Associate(ap.MAC()) })
	w.eng.Run(10 * sim.Second)
	if delivered != 6 {
		t.Fatalf("delivered %d of 6 frames under RTS/CTS", delivered)
	}
	// One RTS per above-threshold attempt (retries resend the RTS, so the
	// count may exceed the 5 distinct frames but never reach the small one).
	if cl.Stats.TxRTS < 5 || cl.Stats.TxRTS > 5+cl.Stats.Retries {
		t.Errorf("RTS count = %d (retries=%d), want 5 + retries", cl.Stats.TxRTS, cl.Stats.Retries)
	}
	if ap.Stats.TxCTSResp < 5 {
		t.Errorf("AP CTS responses = %d, want ≥5", ap.Stats.TxCTSResp)
	}
}

func TestRTSWithoutCTSRetries(t *testing.T) {
	// No AP present: RTS gets no CTS; sender must back off, retry and
	// eventually abandon like a missing ACK.
	w := newWorld(21)
	cl := NewClient(w.eng, w.med, building.Point{X: 12, Y: 14, Z: 1},
		Config{ID: 2, MAC: cliMAC(2), Channel: 1, PHY: PHY80211g, RTSThresholdBytes: 500})
	// Bypass association to exercise the raw data path.
	cl.SendData(dot80211.MAC{0x02, 0xee}, dot80211.MAC{0x02, 0xee}, make([]byte, 1200), 0, false, nil)
	w.eng.Run(10 * sim.Second)
	if cl.Stats.Failed != 1 {
		t.Errorf("failed exchanges = %d, want 1", cl.Stats.Failed)
	}
	if cl.Stats.TxRTS < 2 {
		t.Errorf("RTS attempts = %d, want retries", cl.Stats.TxRTS)
	}
}
