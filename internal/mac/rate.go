package mac

import "repro/internal/dot80211"

// arfState is per-destination Auto Rate Fallback state: step the rate up
// after a streak of successes, down after consecutive failures. This is the
// rate-adaptation behaviour whose artifact — rate drops after losses —
// the paper's §5.1 heuristics rely on.
type arfState struct {
	idx       int // index into the station's rate ladder
	successes int
	failures  int
}

const (
	arfUpAfter   = 10
	arfDownAfter = 2
)

// ladder returns the station's rate ladder by PHY.
func (s *Station) ladder() []dot80211.Rate {
	if s.cfg.PHY == PHY80211b {
		return dot80211.BRates
	}
	// 11g stations use the full OFDM ladder (CCK rates are left for
	// protection/control traffic).
	return dot80211.GRates
}

// rateFor returns the current data rate toward dst.
func (s *Station) rateFor(dst dot80211.MAC) dot80211.Rate {
	l := s.ladder()
	st := s.rates[dst]
	if st == nil {
		st = &arfState{idx: len(l) - 2} // start one below the top
		if st.idx < 0 {
			st.idx = 0
		}
		s.rates[dst] = st
	}
	return l[st.idx]
}

// stepDown lowers the rate by the retry count without touching ARF state:
// the rate used for a retransmission never exceeds the original.
func (s *Station) stepDown(r dot80211.Rate, retries int) dot80211.Rate {
	l := s.ladder()
	idx := 0
	for i, v := range l {
		if v == r {
			idx = i
			break
		}
	}
	idx -= retries
	if idx < 0 {
		idx = 0
	}
	return l[idx]
}

// rateOK records a delivered exchange toward dst.
func (s *Station) rateOK(dst dot80211.MAC) {
	st := s.rates[dst]
	if st == nil {
		return
	}
	st.failures = 0
	st.successes++
	if st.successes >= arfUpAfter && st.idx < len(s.ladder())-1 {
		st.idx++
		st.successes = 0
	}
}

// ResetRates drops all per-destination ARF state. A station does this on
// reassociation: rate history learned toward the old AP (or at the old
// position) says nothing about the new link, and carrying a fallback streak
// across a handoff would start the new association at the bottom of the
// ladder for no reason.
func (s *Station) ResetRates() {
	s.rates = make(map[dot80211.MAC]*arfState)
}

// rateIndex exposes the current ARF ladder index toward dst (-1 when no
// state exists yet), for tests and diagnostics.
func (s *Station) rateIndex(dst dot80211.MAC) int {
	st := s.rates[dst]
	if st == nil {
		return -1
	}
	return st.idx
}

// rateFail records a failed transmission attempt toward dst.
func (s *Station) rateFail(dst dot80211.MAC) {
	st := s.rates[dst]
	if st == nil {
		return
	}
	st.successes = 0
	st.failures++
	if st.failures >= arfDownAfter && st.idx > 0 {
		st.idx--
		st.failures = 0
	}
}
