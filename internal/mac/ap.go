package mac

import (
	"encoding/binary"

	"repro/internal/dot80211"
	"repro/internal/radio"
	"repro/internal/sim"
)

// BeaconInterval is the AP beacon period (the standard's 100 TU = 102.4 ms;
// §4.2 notes beacons bound the gaps between resynchronization chances).
const BeaconInterval = 102400 * sim.Microsecond

// DefaultProtectionTimeout reproduces the deployment's overly conservative
// policy: protection stays on for an hour after the last 802.11b client is
// sensed (§7.3).
const DefaultProtectionTimeout = 3600 * sim.Second

// PracticalProtectionTimeout is the paper's suggested one-minute policy.
const PracticalProtectionTimeout = 60 * sim.Second

// beacon body flag bits (our synthetic IE encoding: TSF + flags + SSID).
const beaconFlagProtection = 0x01

// assocClient is the AP's view of an associated station.
type assocClient struct {
	mac dot80211.MAC
	phy PHYMode
}

// AP is a production access point: a station that beacons, answers probes,
// accepts associations, bridges to the wired distribution network and runs
// the 802.11g protection-mode policy.
type AP struct {
	*Station
	SSID string

	// ToWired is invoked for every uplink data frame an associated client
	// delivers; the scenario's wired network routes it onward.
	ToWired func(src, dst dot80211.MAC, payload []byte)

	// ProtectionTimeout governs how long after last sensing an 802.11b
	// client the AP keeps protection enabled.
	ProtectionTimeout sim.Time

	clients   map[dot80211.MAC]*assocClient
	lastBSeen sim.Time
	sawB      bool
	beaconSeq int

	// Probe responses sent, for the Fig. 10 range inference.
	ProbeResponses int
}

// NewAP creates an access point and starts its beacon schedule.
func NewAP(eng *sim.Engine, med *radio.Medium, pos Position, cfg Config, ssid string) *AP {
	cfg.PowerDBm = radio.APTxPowerDBm
	cfg.PHY = PHY80211g
	ap := &AP{
		Station:           NewStation(eng, med, pos, cfg),
		SSID:              ssid,
		ProtectionTimeout: DefaultProtectionTimeout,
		clients:           make(map[dot80211.MAC]*assocClient),
	}
	ap.Station.OnMgmt = ap.handleMgmt
	ap.Station.Deliver = ap.handleData
	// Desynchronize TBTTs across APs like real deployments.
	first := sim.Time(eng.Rand().Int63n(int64(BeaconInterval)))
	eng.At(first, ap.beacon)
	return ap
}

// beacon emits one beacon and schedules the next.
func (ap *AP) beacon() {
	tsf := uint64(ap.eng.Now().US64())
	flags := byte(0)
	if ap.ProtectionOn() {
		flags |= beaconFlagProtection
	}
	body := make([]byte, 9+len(ap.SSID))
	binary.LittleEndian.PutUint64(body[:8], tsf)
	body[8] = flags
	copy(body[9:], ap.SSID)
	f := dot80211.Frame{
		Header: dot80211.Header{
			Type: dot80211.TypeManagement, Subtype: dot80211.SubtypeBeacon,
			Addr1: dot80211.Broadcast, Addr2: ap.cfg.MAC, Addr3: ap.cfg.MAC,
		},
		Body: body,
	}
	ap.SendMgmt(f, nil)
	ap.eng.After(BeaconInterval, ap.beacon)
}

// ProtectionOn reports whether 802.11g protection mode is currently active.
func (ap *AP) ProtectionOn() bool {
	return ap.sawB && ap.eng.Now()-ap.lastBSeen < ap.ProtectionTimeout
}

// noteBClient records evidence of an 802.11b station in range.
func (ap *AP) noteBClient() {
	ap.sawB = true
	ap.lastBSeen = ap.eng.Now()
}

// handleMgmt answers probe requests and runs the association handshake.
// Clients advertise their PHY in the first body byte of probe and
// association requests ('b' or 'g').
func (ap *AP) handleMgmt(f dot80211.Frame) {
	phyOf := func() PHYMode {
		if len(f.Body) > 0 && f.Body[0] == 'b' {
			return PHY80211b
		}
		return PHY80211g
	}
	switch f.Subtype {
	case dot80211.SubtypeProbeReq:
		if phyOf() == PHY80211b {
			ap.noteBClient()
		}
		resp := dot80211.NewProbeResp(f.Addr2, ap.cfg.MAC, 0, ap.SSID)
		ap.ProbeResponses++
		ap.SendMgmt(resp, nil)
	case dot80211.SubtypeAuth:
		resp := dot80211.NewMgmt(dot80211.SubtypeAuth, f.Addr2, ap.cfg.MAC, ap.cfg.MAC, 0, []byte{0})
		ap.SendMgmt(resp, nil)
	case dot80211.SubtypeAssocReq:
		phy := phyOf()
		ap.clients[f.Addr2] = &assocClient{mac: f.Addr2, phy: phy}
		if phy == PHY80211b {
			ap.noteBClient()
		}
		resp := dot80211.NewMgmt(dot80211.SubtypeAssocResp, f.Addr2, ap.cfg.MAC, ap.cfg.MAC, 0, []byte{0})
		ap.SendMgmt(resp, nil)
	case dot80211.SubtypeDisassoc:
		delete(ap.clients, f.Addr2)
	}
}

// handleData receives uplink frames from clients and bridges them.
func (ap *AP) handleData(f dot80211.Frame) {
	if c, ok := ap.clients[f.Addr2]; ok && c.phy == PHY80211b {
		ap.noteBClient()
	}
	if ap.ToWired != nil {
		ap.ToWired(f.Addr2, f.Addr3, f.Body)
	}
}

// SendToClient queues a downlink DATA frame toward an associated client,
// applying protection policy for OFDM transmissions. Returns false if the
// client is not associated.
func (ap *AP) SendToClient(dst dot80211.MAC, srcAddr dot80211.MAC, payload []byte, onDone func(bool)) bool {
	c, ok := ap.clients[dst]
	if !ok {
		if onDone != nil {
			onDone(false)
		}
		return false
	}
	rate := dot80211.Rate(0) // adapt
	if c.phy == PHY80211b {
		// CCK only toward b clients.
		rate = dot80211.Rate11Mbps
	}
	f := dot80211.NewData(dst, ap.cfg.MAC, srcAddr, ap.nextSeq(), payload)
	f.Flags |= dot80211.FlagFromDS
	ap.enqueue(outFrame{frame: f, rate: rate, protect: ap.ProtectionOn() && c.phy == PHY80211g, onDone: onDone})
	return true
}

// SendBroadcastDownlink transmits a broadcast frame received from the wired
// network (ARP, DHCP...). Broadcast frames go at the lowest rate with no
// ACK — the inefficiency §7.1 quantifies.
func (ap *AP) SendBroadcastDownlink(srcAddr dot80211.MAC, payload []byte) {
	f := dot80211.NewData(dot80211.Broadcast, ap.cfg.MAC, srcAddr, ap.nextSeq(), payload)
	f.Flags |= dot80211.FlagFromDS
	ap.enqueue(outFrame{frame: f, rate: dot80211.Rate1Mbps, noRetry: true})
}

// Associated reports whether a client is associated and its PHY.
func (ap *AP) Associated(c dot80211.MAC) (PHYMode, bool) {
	a, ok := ap.clients[c]
	if !ok {
		return 0, false
	}
	return a.phy, true
}

// ClientCount returns the number of associated clients.
func (ap *AP) ClientCount() int { return len(ap.clients) }
