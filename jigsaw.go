// Package jigsaw reproduces "Jigsaw: Solving the Puzzle of Enterprise
// 802.11 Analysis" (Cheng, Bellardo, Benkö, Snoeren, Voelker, Savage —
// SIGCOMM 2006) as a Go library.
//
// Jigsaw merges the traces of many passive 802.11 monitors into a single
// globally synchronized trace and reconstructs every link-layer and
// transport-layer conversation from it. This module implements the three
// contributions of the paper — large-scale passive clock synchronization,
// frame unification, and multi-layer reconstruction — together with the
// entire substrate needed to exercise them without the authors' building:
// a discrete-event 802.11b/g simulator (PHY propagation, DCF MAC, TCP
// endpoints, a wired distribution network, imperfect monitor clocks, and a
// diurnal enterprise workload).
//
// # Layout
//
//	internal/dot80211   802.11 frames, rates, airtime, protection math
//	internal/clock      monitor clock models + skew/drift estimators
//	internal/building   geometry, pod/AP placement
//	internal/radio      propagation, SINR medium, carrier sense
//	internal/sim        discrete-event engine
//	internal/mac        DCF stations, APs, clients, protection policy
//	internal/cc         pluggable congestion control (Reno/CUBIC/BBR + fixed)
//	internal/tcpsim     TCP endpoints + wired network with bottleneck queue
//	internal/workload   diurnal activity and flow mix
//	internal/tracefile  jigdump trace format (compressed blocks + index)
//	internal/scenario   end-to-end simulation producing traces
//	internal/timesync   §4.1 bootstrap synchronization
//	internal/unify      §4.2 frame unification + continuous resync
//	internal/llc        §5.1 attempts / frame exchanges / inference
//	internal/transport  §5.2 TCP reconstruction + delivery oracle + CC fingerprinting
//	internal/core       the full pipeline
//	internal/analysis   §6–7 experiments (all tables and figures)
//	internal/baseline   beacon-only sync and naive-merge comparators
//
// The top-level facade re-exports the pieces a user of the library touches
// most: simulate a deployment, run the pipeline, analyze the result.
//
// # Concurrency architecture
//
// The pipeline runs online in a single pass; with PipelineConfig.Workers
// greater than one (the default — it auto-sizes to GOMAXPROCS) that pass
// is spread across the machine:
//
//	bootstrap pre-scan    worker pool over the independent radio windows
//	trace decompression   per-radio background prefetchers
//	unification           serial (one priority queue), on the caller's goroutine
//	llc reconstruction    sharded by conversation key across Workers
//	canonical merge       watermark-driven heap re-serializing exchanges
//	transport analysis    sharded by TCP flow 4-tuple across Workers
//
// Sharding never changes results: each reconstruction shard receives
// exactly the jframe subsequence that can touch its state, every exchange
// carries a deterministic close stamp, and the merge releases exchanges in
// canonical close order — so Workers=N output is identical to the
// Workers=1 serial reference, a property the test suite asserts seed by
// seed and across congestion-control mixes (internal/cc controllers are
// pure event-driven state machines over integer microsecond time, so
// Reno/CUBIC/BBR dynamics replay bit-for-bit too). Batch experiment sweeps
// fan whole scenarios across a pool with scenario.RunBatch (see
// cmd/jigbench -sweep).
//
// # Quick start
//
//	out, _ := jigsaw.Simulate(jigsaw.DefaultScenario())
//	res, _ := jigsaw.Merge(out, jigsaw.DefaultPipeline())
//	fmt.Println(jigsaw.Summarize(res))
//
// # Streaming analyses
//
// Every analysis in internal/analysis is a streaming pass
// (analysis.Pass): attach passes to PipelineConfig.Passes and the pipeline
// feeds them inline as jframes and exchanges are emitted, on both the
// serial and sharded-parallel paths, with no KeepJFrames/KeepExchanges
// retention — the property that lets a building-scale trace directory be
// analyzed in bounded memory. See the "Writing an analysis pass" section
// of README.md.
//
// Congestion-control workloads: MixedCCScenario runs a Reno/CUBIC/BBR
// flow mix over a finite bottleneck queue, the transport analyzer
// fingerprints each reconstructed flow's controller from its passive
// window trajectory, and analysis scores fairness and the fingerprint
// confusion against simulator ground truth:
//
//	out, _ := jigsaw.Simulate(jigsaw.MixedCCScenario())
//	res, _ := jigsaw.Merge(out, jigsaw.DefaultPipeline())
//	fmt.Println(analysis.FairnessTable(analysis.CCFairness(out.FlowCCs, out.Cfg.Day.SecondsF())))
//	fmt.Println(analysis.CCConfusionReport(out.FlowCCs, res.Transport.FingerprintCC()))
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package jigsaw

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scenario"
)

// ScenarioConfig parameterizes the simulated deployment.
type ScenarioConfig = scenario.Config

// ScenarioOutput bundles the traces, wired tap, ground truth and roster a
// simulation produces.
type ScenarioOutput = scenario.Output

// PipelineConfig tunes the merge pipeline (search window, resync threshold,
// skew compensation, retention).
type PipelineConfig = core.Config

// Result is the pipeline output: bootstrap state, unification statistics,
// dispersion histogram, reconstruction stats and the transport analyzer.
type Result = core.Result

// DefaultScenario returns a laptop-scale deployment configuration.
func DefaultScenario() ScenarioConfig { return scenario.Default() }

// PaperScaleScenario returns the full 39-pod / 156-radio deployment.
func PaperScaleScenario() ScenarioConfig { return scenario.PaperScale() }

// MixedCCScenario returns a deployment whose flows run an even
// Reno/CUBIC/BBR congestion-control mix over a finite bottleneck queue —
// the workload behind the CC-fairness and fingerprinting experiments.
func MixedCCScenario() ScenarioConfig { return scenario.MixedCC() }

// DefaultPipeline returns the paper's pipeline operating point (10 ms
// search window, 10 µs resync threshold, skew compensation on).
func DefaultPipeline() PipelineConfig { return core.DefaultConfig() }

// Simulate runs the substrate and returns per-radio traces plus ground
// truth.
func Simulate(cfg ScenarioConfig) (*ScenarioOutput, error) { return scenario.Run(cfg) }

// BuildingScaleScenario returns the out-of-core deployment: 30 pods (120
// monitor radios), 12 APs, mixed-CC clients, several minutes of sim time.
// Set ScenarioConfig.SpillDir before Simulate so traces stream to disk.
func BuildingScaleScenario() ScenarioConfig { return scenario.BuildingScale() }

// Merge runs the Jigsaw pipeline over a simulation's traces, streaming from
// disk when the scenario spilled them (ScenarioConfig.SpillDir) and from
// the in-memory buffers otherwise.
func Merge(out *ScenarioOutput, cfg PipelineConfig) (*Result, error) {
	return core.RunFrom(out.TraceSet(), out.ClockGroups, cfg, nil)
}

// Summarize builds the Table-1 style trace summary. With
// cfg.KeepJFrames set during Merge it reads the retained slice; without
// retention, attach analysis.NewSummaryPass() to PipelineConfig.Passes
// instead and Finalize it after Merge.
func Summarize(res *Result) string {
	return analysis.Summarize(res, res.JFrames).String()
}
