// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations DESIGN.md calls out. Shapes (who wins, knees,
// crossovers) are asserted in the test suite; the benches measure cost and
// report the headline metrics via b.ReportMetric so `go test -bench` output
// doubles as the experiment record.
package jigsaw

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/timesync"
	"repro/internal/tracefile"
	"repro/internal/unify"
)

// benchState caches one scenario + pipeline run shared by all benchmarks
// (regenerating the substrate per benchmark would swamp the measurements).
// The cached pieces are treated as immutable: traces holds its own copy of
// every trace's bytes (not views into out.Traces buffers), and tracesCopy
// hands each benchmark iteration a fresh map, so re-running core.Run —
// including from parallel benchmark goroutines — can never alias state that
// another benchmark (or the cached res) still reads.
type benchState struct {
	out    *scenario.Output
	res    *core.Result
	traces map[int32][]byte
}

// tracesCopy returns a fresh radio→bytes map over the immutable trace
// copies; callers may add or drop radios without affecting the cache.
func (s *benchState) tracesCopy() map[int32][]byte {
	m := make(map[int32][]byte, len(s.traces))
	for k, v := range s.traces {
		m[k] = v
	}
	return m
}

var (
	benchOnce sync.Once
	bench     benchState
)

func setupBench(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		cfg := scenario.Default()
		cfg.Seed = 3
		cfg.Pods, cfg.APs, cfg.Clients = 12, 12, 24
		cfg.Day = 120 * sim.Second
		cfg.BFraction = 0.3
		out, err := scenario.Run(cfg)
		if err != nil {
			panic(err)
		}
		traces := make(map[int32][]byte, len(out.Traces))
		for r, buf := range out.Traces {
			traces[r] = append([]byte(nil), buf.Bytes()...)
		}
		ccfg := core.DefaultConfig()
		ccfg.KeepExchanges = true
		ccfg.KeepJFrames = true
		res, err := core.Run(traces, out.ClockGroups, ccfg, nil)
		if err != nil {
			panic(err)
		}
		bench = benchState{out: out, res: res, traces: traces}
	})
	return &bench
}

// BenchmarkMergeThroughput measures the §4 requirement: trace merging must
// run faster than real time in a single pass. Pinned to the Workers=1
// serial reference path; BenchmarkPipelineParallel is the multicore
// counterpart. Reports events/sec and the realtime multiple.
func BenchmarkMergeThroughput(b *testing.B) {
	s := setupBench(b)
	traces := s.tracesCopy()
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(traces, s.out.ClockGroups, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		events = res.UnifyStats.Events
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(events)/perOp, "events/s")
	b.ReportMetric(s.out.Cfg.Day.SecondsF()/perOp, "x-realtime")
}

// BenchmarkPipelineParallel runs the identical workload through the sharded
// pipeline at GOMAXPROCS workers; compare its events/s against
// BenchmarkMergeThroughput's for the parallel speedup (the determinism test
// guarantees the two paths produce identical results, so the comparison is
// apples-to-apples).
func BenchmarkPipelineParallel(b *testing.B) {
	s := setupBench(b)
	traces := s.tracesCopy()
	cfg := core.DefaultConfig()
	cfg.Workers = 0 // GOMAXPROCS
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(traces, s.out.ClockGroups, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		events = res.UnifyStats.Events
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(events)/perOp, "events/s")
	b.ReportMetric(s.out.Cfg.Day.SecondsF()/perOp, "x-realtime")
}

// BenchmarkPipelineOutOfCore runs the identical workload through the
// directory-backed streaming path (tracefile.OpenDir + core.RunFrom): the
// building-scale configuration, where the compressed trace set exceeds
// RAM and only file-backed sources can feed the merge. Compare events/s
// against BenchmarkPipelineParallel (same results, asserted by the
// determinism tests) and B/op against BenchmarkMergeThroughput for the
// streaming path's allocation profile; cmd/jigbench -bench-json tracks the
// peak-heap trajectory itself.
func BenchmarkPipelineOutOfCore(b *testing.B) {
	s := setupBench(b)
	dir := b.TempDir()
	for r, blob := range s.traces {
		if err := os.WriteFile(tracefile.TracePath(dir, r), blob, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	ts, err := tracefile.OpenDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := core.RunFrom(ts, s.out.ClockGroups, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		events = res.UnifyStats.Events
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(events)/perOp, "events/s")
	b.ReportMetric(s.out.Cfg.Day.SecondsF()/perOp, "x-realtime")
}

// BenchmarkFig4GroupDispersion reports the synchronization quality knees of
// Figure 4 while measuring the unification cost.
func BenchmarkFig4GroupDispersion(b *testing.B) {
	s := setupBench(b)
	traces := s.tracesCopy()
	b.ResetTimer()
	var p90, p99 int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(traces, s.out.ClockGroups, core.DefaultConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		p90, p99 = res.Dispersion.Percentile(0.90), res.Dispersion.Percentile(0.99)
	}
	b.ReportMetric(float64(p90), "p90-us")
	b.ReportMetric(float64(p99), "p99-us")
}

// BenchmarkTable1TraceSummary regenerates Table 1.
func BenchmarkTable1TraceSummary(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	var sum *analysis.TraceSummary
	for i := 0; i < b.N; i++ {
		sum = analysis.Summarize(s.res, s.res.JFrames)
	}
	b.ReportMetric(sum.AvgInstances, "obs/frame")
	b.ReportMetric(sum.ErrorEventPct, "err-%")
}

// BenchmarkFig6Coverage regenerates the wired-trace coverage comparison.
func BenchmarkFig6Coverage(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	var cov *analysis.CoverageReport
	for i := 0; i < b.N; i++ {
		cov = analysis.Coverage(s.out, s.res.Exchanges)
	}
	b.ReportMetric(100*cov.Overall, "overall-%")
	b.ReportMetric(100*cov.ClientCoverage, "client-%")
	b.ReportMetric(100*cov.APCoverage, "ap-%")
}

// BenchmarkFig7PodSensitivity reruns the pipeline on reduced pod subsets.
func BenchmarkFig7PodSensitivity(b *testing.B) {
	s := setupBench(b)
	counts := []int{s.out.Cfg.Pods, s.out.Cfg.Pods * 3 / 4, s.out.Cfg.Pods / 2}
	b.ResetTimer()
	var rows []analysis.PodCoverage
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = analysis.PodSweep(s.out, counts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[0].ClientCoverage, "cli-full-%")
	b.ReportMetric(100*rows[len(rows)-1].ClientCoverage, "cli-half-%")
	b.ReportMetric(100*rows[len(rows)-1].APCoverage, "ap-half-%")
}

// BenchmarkFig8TimeSeries regenerates the activity time series.
func BenchmarkFig8TimeSeries(b *testing.B) {
	s := setupBench(b)
	slotUS := s.out.Cfg.HourDur().US64()
	b.ResetTimer()
	var slots []analysis.ActivitySlot
	for i := 0; i < b.N; i++ {
		slots = analysis.TimeSeries(s.res.JFrames, slotUS)
	}
	b.ReportMetric(100*analysis.BroadcastAirtimeShare(slots), "bcast-air-%")
}

// BenchmarkFig9Interference regenerates the interference estimate.
func BenchmarkFig9Interference(b *testing.B) {
	s := setupBench(b)
	apSet := map[dot80211.MAC]bool{}
	for _, ap := range s.out.APs {
		apSet[ap.MAC] = true
	}
	isAP := func(m dot80211.MAC) bool { return apSet[m] }
	b.ResetTimer()
	var rep *analysis.InterferenceReport
	for i := 0; i < b.N; i++ {
		rep = analysis.Interference(s.res.JFrames, s.res.Exchanges, 100, isAP)
	}
	b.ReportMetric(100*rep.FractionWithInterference, "interfered-%")
	b.ReportMetric(rep.AvgBackgroundLoss, "bg-loss")
	b.ReportMetric(rep.XPercentile(0.9), "X-p90")
}

// BenchmarkFig10Protection regenerates the overprotective-AP analysis.
func BenchmarkFig10Protection(b *testing.B) {
	s := setupBench(b)
	slotUS := s.out.Cfg.HourDur().US64()
	b.ResetTimer()
	var rep *analysis.ProtectionReport
	for i := 0; i < b.N; i++ {
		rep = analysis.Protection(s.res.JFrames, slotUS, slotUS)
	}
	b.ReportMetric(100*rep.PeakAffectedShare, "peak-affected-%")
	b.ReportMetric(rep.PotentialSpeedup, "speedup-bound")
}

// BenchmarkFig11TCPLoss regenerates the TCP loss split.
func BenchmarkFig11TCPLoss(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	var rep *analysis.TCPLossReport
	for i := 0; i < b.N; i++ {
		var rates []analysis.FlowLoss
		for _, r := range s.res.Transport.LossRates(5) {
			rates = append(rates, analysis.FlowLoss{
				DataSegs: r.DataSegs, Losses: r.Losses,
				WirelessLoss: r.WirelessLoss, WiredLoss: r.WiredLoss, LossRate: r.LossRate,
			})
		}
		rep = analysis.TCPLoss(rates)
	}
	b.ReportMetric(100*rep.WirelessShare, "wireless-%")
}

// BenchmarkAblationSkewCompensation compares dispersion with the EWMA
// skew/drift model on and off (§4.2: required at scale).
func BenchmarkAblationSkewCompensation(b *testing.B) {
	s := setupBench(b)
	traces := s.tracesCopy()
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Unify.SkewCompensation = on
			var p90 int64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(traces, s.out.ClockGroups, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				p90 = res.Dispersion.Percentile(0.90)
			}
			b.ReportMetric(float64(p90), "p90-us")
		})
	}
}

// BenchmarkAblationSearchWindow sweeps the unifier's search window (paper
// default 10 ms; "dangerously large" windows admit mismerges, tiny windows
// drop slow radios).
func BenchmarkAblationSearchWindow(b *testing.B) {
	s := setupBench(b)
	traces := s.tracesCopy()
	for _, winUS := range []int64{1_000, 10_000, 100_000} {
		b.Run(formatUS(winUS), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Unify.SearchWindowUS = winUS
			var jf int64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(traces, s.out.ClockGroups, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				jf = res.UnifyStats.JFrames
			}
			b.ReportMetric(float64(jf), "jframes")
		})
	}
}

// BenchmarkAblationResyncThreshold sweeps the 10 µs dispersion threshold.
func BenchmarkAblationResyncThreshold(b *testing.B) {
	s := setupBench(b)
	traces := s.tracesCopy()
	for _, thr := range []int64{1, 10, 100} {
		b.Run(formatUS(thr), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Unify.ResyncDispersionUS = thr
			var p90, resyncs int64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(traces, s.out.ClockGroups, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				p90, resyncs = res.Dispersion.Percentile(0.90), res.UnifyStats.Resyncs
			}
			b.ReportMetric(float64(p90), "p90-us")
			b.ReportMetric(float64(resyncs), "resyncs")
		})
	}
}

// BenchmarkBaselineBeaconSync compares Jigsaw's bootstrap against the
// Yeo-style beacon-only baseline on the same window.
func BenchmarkBaselineBeaconSync(b *testing.B) {
	s := setupBench(b)
	var recs []tracefile.Record
	for _, blob := range s.traces {
		rs, err := tracefile.ReadAll(bytes.NewReader(blob))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.LocalUS < 5_000_000 {
				recs = append(recs, r)
			}
		}
	}
	b.Run("jigsaw", func(b *testing.B) {
		var errP90 int64
		for i := 0; i < b.N; i++ {
			boot, err := timesync.Bootstrap(recs, s.out.ClockGroups)
			if err != nil {
				b.Fatal(err)
			}
			errs := baseline.SyncErrorUS(recs, boot.OffsetUS)
			errP90 = errs[int(float64(len(errs))*0.9)]
		}
		b.ReportMetric(float64(errP90), "syncerr-p90-us")
	})
	b.Run("beacon-only", func(b *testing.B) {
		var errP90 int64
		for i := 0; i < b.N; i++ {
			res := baseline.BeaconSync(recs)
			errs := baseline.SyncErrorUS(recs, res.OffsetUS)
			errP90 = errs[int(float64(len(errs))*0.9)]
		}
		b.ReportMetric(float64(errP90), "syncerr-p90-us")
	})
}

// BenchmarkBaselineNaiveMerge measures how little a mergecap-style merge
// deduplicates compared to Jigsaw's unifier.
func BenchmarkBaselineNaiveMerge(b *testing.B) {
	s := setupBench(b)
	traces := map[int32][]tracefile.Record{}
	var total int
	for radio, blob := range s.traces {
		rs, err := tracefile.ReadAll(bytes.NewReader(blob))
		if err != nil {
			b.Fatal(err)
		}
		traces[radio] = rs
		total += len(rs)
	}
	b.ResetTimer()
	var collapsed int
	for i := 0; i < b.N; i++ {
		_, collapsed = baseline.NaiveMerge(traces, 100)
	}
	b.StopTimer()
	b.ReportMetric(100*float64(collapsed)/float64(total), "collapsed-%")
	jig := 100 * float64(s.res.UnifyStats.Unified-s.res.UnifyStats.JFrames) / float64(s.res.UnifyStats.Events)
	b.ReportMetric(jig, "jigsaw-collapsed-%")
}

// BenchmarkUnifierOnly isolates the unification stage from reconstruction.
func BenchmarkUnifierOnly(b *testing.B) {
	s := setupBench(b)
	perRadio := map[int32][]tracefile.Record{}
	var window []tracefile.Record
	for radio, blob := range s.traces {
		rs, err := tracefile.ReadAll(bytes.NewReader(blob))
		if err != nil {
			b.Fatal(err)
		}
		perRadio[radio] = rs
		for _, r := range rs {
			if r.LocalUS < 1_000_000 {
				window = append(window, r)
			}
		}
	}
	boot, err := timesync.Bootstrap(window, s.out.ClockGroups)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sources := map[int32]unify.Source{}
		for radio, rs := range perRadio {
			sources[radio] = unify.NewSliceSource(rs)
		}
		u := unify.New(unify.DefaultConfig(), sources, boot)
		if _, err := u.Drain(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameCodec measures the 802.11 encode/decode hot path.
func BenchmarkFrameCodec(b *testing.B) {
	f := dot80211.NewData(
		dot80211.MAC{2, 1}, dot80211.MAC{2, 2}, dot80211.MAC{2, 3},
		1234, make([]byte, 1460))
	wire := f.Encode()
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.Encode()
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dot80211.Decode(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.SetBytes(int64(len(wire)))
}

// BenchmarkTracefileRoundTrip measures the jigdump format.
func BenchmarkTracefileRoundTrip(b *testing.B) {
	s := setupBench(b)
	var radio int32 = -1
	var blob []byte
	for r, bs := range s.traces {
		if blob == nil || len(bs) > len(blob) {
			radio, blob = r, bs
		}
	}
	_ = radio
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := tracefile.ReadAll(bytes.NewReader(blob))
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func formatUS(us int64) string {
	if us >= 1000 {
		return fmt.Sprintf("%dms", us/1000)
	}
	return fmt.Sprintf("%dus", us)
}
