// Quickstart: simulate a small monitored 802.11 network, run the Jigsaw
// pipeline (bootstrap synchronization → frame unification → link/transport
// reconstruction), and look at what comes out.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	// 1. A small deployment: 4 sensor pods (16 radios), 4 APs, 8 clients,
	//    30 seconds representing a compressed "day" of workload.
	cfg := scenario.Default()
	cfg.Pods, cfg.APs, cfg.Clients = 4, 4, 8
	cfg.Day = 30 * sim.Second
	out, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %d radios captured %d records of %d transmissions\n",
		len(out.Traces), out.MonitorRecords, len(out.Truth))

	// 2. Run the Jigsaw pipeline over the per-radio traces. Monitors'
	//    clocks are off by up to ±50 ms with tens-of-ppm skew; the
	//    pipeline synchronizes them to microseconds using nothing but the
	//    frames they overheard in common. Analyses attach as streaming
	//    passes — here a Figure-2 visualization window in the middle of
	//    the day — so nothing retains the merged streams.
	ccfg := core.DefaultConfig()
	// 10 ms of trace at the diurnal peak (hour ~17 of the compressed day).
	vizAt := int64(cfg.Day.SecondsF() * 1e6 * 17 / 24)
	viz := analysis.NewVizPassRelative(vizAt, 10_000, 90)
	ccfg.Passes = []core.Pass{viz}
	start := time.Now() //jiglint:allow wallclock (real merge timing for the demo output)
	res, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged in %v: %d jframes from %d events (%.2f observations each)\n",
		time.Since(start).Round(time.Millisecond), //jiglint:allow wallclock
		res.UnifyStats.JFrames, res.UnifyStats.Events,
		float64(res.UnifyStats.Unified)/float64(res.UnifyStats.JFrames))
	fmt.Printf("synchronization dispersion: p50=%dµs p90=%dµs p99=%dµs\n",
		res.Dispersion.Percentile(0.5), res.Dispersion.Percentile(0.9),
		res.Dispersion.Percentile(0.99))
	fmt.Printf("link layer: %d frame exchanges (%d attempts)\n",
		res.LLCStats.Exchanges, res.LLCStats.Attempts)
	fmt.Printf("transport: %d TCP flows, %d with complete handshakes\n",
		res.Transport.Stats.Flows, res.Transport.Stats.CompleteFlows)

	// 3. Show a slice of the synchronized trace (the paper's Figure 2).
	if res.UnifyStats.JFrames > 100 {
		fmt.Println()
		fmt.Print(viz.Finalize().(string))
	}
}
