// Protection: reproduce the §7.3 analysis. APs keep 802.11g protection
// (CTS-to-self before every OFDM exchange) enabled for a full hour after
// last sensing an 802.11b client; with a practical one-minute policy, most
// of that protection is unnecessary and costs the affected 802.11g clients
// up to a factor of two in throughput (footnote 7). The merged trace's
// global view identifies the overprotective APs and who pays for them
// (Fig. 10).
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	cfg := scenario.Default()
	cfg.Seed = 5
	cfg.Pods, cfg.APs, cfg.Clients = 8, 8, 20
	cfg.BFraction = 0.25 // a mixed b/g population
	cfg.Day = 120 * sim.Second
	out, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The protection analysis runs as a streaming pass fed inline by the
	// merge, so the jframe stream is never retained.
	slotUS := out.Cfg.HourDur().US64()
	pass := analysis.NewProtectionPass(slotUS /* practical 1-"minute" timeout */, slotUS)
	ccfg := core.DefaultConfig()
	ccfg.Passes = []core.Pass{pass}
	if _, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil); err != nil {
		log.Fatal(err)
	}
	rep := pass.Finalize().(*analysis.ProtectionReport)

	fmt.Println("hour  protected  overprotective  g-active  g-affected")
	for i, s := range rep.Slots {
		if s.ProtectedAPs == 0 && s.ActiveGClients == 0 {
			continue
		}
		fmt.Printf("%4d  %9d  %14d  %8d  %10d\n",
			i, s.ProtectedAPs, s.Overprotective, s.ActiveGClients, s.GOnOverprotected)
	}
	fmt.Printf("\npeak share of g clients behind overprotective APs: %.0f%% (paper: 25–50%%)\n",
		100*rep.PeakAffectedShare)
	fmt.Printf("potential throughput factor without protection: %.2f (paper: 1.98)\n",
		rep.PotentialSpeedup)
}
