// Coverage: reproduce the §6 experiments. The wired distribution trace is
// the comparison set: every TCP packet that traversed the wire must have
// appeared as a unicast DATA frame on the air, so the fraction also found
// in the merged wireless trace measures the monitoring platform's coverage
// (Fig. 6). Removing sensor pods by visual redundancy shows how coverage
// degrades — clients fall off quickly, APs barely (Fig. 7) — until the
// synchronization graph itself partitions.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	cfg := scenario.Default()
	cfg.Seed = 7
	cfg.Pods, cfg.APs, cfg.Clients = 12, 12, 20
	cfg.Day = 90 * sim.Second
	out, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The coverage analysis runs as a streaming pass fed inline by the
	// merge, so the exchange stream is never retained.
	ccfg := core.DefaultConfig()
	covPass := analysis.NewCoveragePass(out)
	ccfg.Passes = []core.Pass{covPass}
	if _, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil); err != nil {
		log.Fatal(err)
	}

	// Fig. 6: full-deployment coverage.
	cov := covPass.Finalize().(*analysis.CoverageReport)
	fmt.Printf("full deployment (%d pods):\n", cfg.Pods)
	fmt.Printf("  %.1f%% of %d wired packets captured wirelessly (paper: 97%%)\n",
		100*cov.Overall, cov.TotalWired)
	fmt.Printf("  clients: %.0f%% at 100%% coverage, %.0f%% at ≥95%% (paper: 46%%, 78%%)\n",
		100*cov.ClientsAt100, 100*cov.ClientsOver95)
	fmt.Printf("  APs:     %.0f%% at 100%% coverage, %.0f%% at ≥95%% (paper: 40%%, 94%%)\n",
		100*cov.APsAt100, 100*cov.APsOver95)
	oracle, _ := analysis.OracleCoverage(out)
	fmt.Printf("  oracle (ground-truth) coverage of client events: %.0f%% (paper: 95%%)\n\n",
		100*oracle)

	// Fig. 7: pod-count sensitivity.
	rows, err := analysis.PodSweep(out, []int{12, 9, 6, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pods  radios  synced  AP-coverage  client-coverage")
	for _, r := range rows {
		fmt.Printf("%4d  %6d  %6v  %10.0f%%  %14.0f%%\n",
			r.Pods, r.Radios, r.Synced, 100*r.APCoverage, 100*r.ClientCoverage)
	}
	fmt.Println("\npaper: 39→30→20 pods kept AP coverage ≈94% while client coverage fell 92→71→68;")
	fmt.Println("at 10 pods the synchronization bootstrap partitioned, preventing unification.")
}
