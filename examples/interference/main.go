// Interference: reproduce the §7.2 analysis on a hidden-terminal-rich
// deployment. The global viewpoint of the merged trace lets us detect that
// a transmission was lost at the same moment a third node was transmitting
// — something no single vantage point can see — and estimate, per
// (sender, receiver) pair, the probability that simultaneous transmissions
// cause loss (Fig. 9).
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot80211"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	// Many clients spread through the building on few channels: plenty of
	// stations that cannot hear each other but share receivers.
	cfg := scenario.Default()
	cfg.Seed = 11
	cfg.Pods, cfg.APs, cfg.Clients = 10, 10, 28
	cfg.Day = 90 * sim.Second
	cfg.FlowMeanGap = 3 * sim.Second // busy network: more overlap
	out, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The interference analysis runs as a streaming pass fed inline by
	// the merge: a sliding interval window answers the overlap queries, so
	// neither the jframe nor the exchange stream is retained.
	apSet := scenario.APSet(out.APs)
	pass := analysis.NewInterferencePass(50, func(m dot80211.MAC) bool { return apSet[m] })
	ccfg := core.DefaultConfig()
	ccfg.Passes = []core.Pass{pass}
	if _, err := core.Run(core.TracesFromBuffers(out.Traces), out.ClockGroups, ccfg, nil); err != nil {
		log.Fatal(err)
	}
	rep := pass.Finalize().(*analysis.InterferenceReport)

	fmt.Printf("(s,r) pairs with ≥50 packets: %d (of %d observed)\n",
		len(rep.Pairs), rep.PairsConsidered)
	fmt.Printf("average background loss rate: %.3f (paper: 0.12)\n", rep.AvgBackgroundLoss)
	fmt.Printf("pairs experiencing interference (Pi > 0): %.0f%% (paper: 88%%)\n",
		100*rep.FractionWithInterference)
	fmt.Printf("pairs with negative Pi (truncated): %.0f%% (paper: 11%%)\n",
		100*rep.NegativePiFraction)
	fmt.Printf("interfered senders that are APs: %.0f%% (paper: 56%%)\n\n",
		100*rep.SenderSplitAP)

	fmt.Println("interference loss rate X across pairs (Fig. 9 CDF):")
	for _, p := range []float64{0.25, 0.5, 0.75, 0.9, 0.95, 1.0} {
		fmt.Printf("  p%-3.0f  X = %.4f\n", p*100, rep.XPercentile(p-1e-9))
	}

	// The worst pairs, like the paper's "few pairs with terrible
	// interference".
	fmt.Println("\nworst pairs:")
	n := len(rep.Pairs)
	for i := n - 3; i < n; i++ {
		if i < 0 {
			continue
		}
		ps := rep.Pairs[i]
		fmt.Printf("  %v → %v: n=%d nx=%d Pi=%.3f X=%.3f\n",
			ps.S, ps.R, ps.N, ps.NX, ps.Pi(), ps.X())
	}
}
